package dkg

import (
	"crypto/rand"
	"math/big"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/curve"
	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	p := pairing.TypeA160()
	base, err := p.G1.RandPoint(rand.Reader)
	if err != nil {
		t.Fatalf("drawing base: %v", err)
	}
	return NewSuite(p, base)
}

func TestPrivacyDegree(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 1, 5: 2, 6: 2, 7: 3, 9: 4}
	for n, want := range cases {
		if got := PrivacyDegree(n); got != want {
			t.Errorf("PrivacyDegree(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDealVerifyReconstruct(t *testing.T) {
	s := testSuite(t)
	secret, err := s.Zr.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	indices := []int{1, 2, 3, 4}
	d, err := s.Deal(secret, 1, indices, rand.Reader)
	if err != nil {
		t.Fatalf("Deal: %v", err)
	}
	// C₀ commits to the secret itself.
	if !s.G.Equal(d.Commitments[0], s.G.ScalarMult(s.Base, secret)) {
		t.Fatal("zeroth commitment does not commit to the secret")
	}
	for _, sh := range d.Shares {
		if err := s.VerifyShare(d.Commitments, sh); err != nil {
			t.Fatalf("share %d rejected: %v", sh.Index, err)
		}
	}
	// A corrupted share must be rejected.
	bad := Share{Index: d.Shares[0].Index, Value: s.Zr.Add(d.Shares[0].Value, big.NewInt(1))}
	if err := s.VerifyShare(d.Commitments, bad); err == nil {
		t.Fatal("corrupted share verified")
	}
	// Any d+1 = 2 shares reconstruct; every pair agrees.
	for i := 0; i < len(d.Shares); i++ {
		for j := i + 1; j < len(d.Shares); j++ {
			got, err := s.Reconstruct(1, []Share{d.Shares[i], d.Shares[j]})
			if err != nil {
				t.Fatalf("Reconstruct: %v", err)
			}
			if got.Cmp(secret) != 0 {
				t.Fatalf("shares (%d,%d) reconstructed the wrong secret", d.Shares[i].Index, d.Shares[j].Index)
			}
		}
	}
	// One share is not enough.
	if _, err := s.Reconstruct(1, d.Shares[:1]); err == nil {
		t.Fatal("reconstructed from a single share of a degree-1 sharing")
	}
}

func TestReshareToNewHolderSet(t *testing.T) {
	s := testSuite(t)
	secret, err := s.Zr.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	oldIdx := []int{1, 2, 3, 4}
	d, err := s.Deal(secret, 1, oldIdx, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Dealer set T = {2, 4} (any d+1 old holders); new holder set 1..6 at
	// the larger degree for 6 members.
	newIdx := []int{1, 2, 3, 4, 5, 6}
	newDeg := PrivacyDegree(len(newIdx))
	dealers := []int{2, 4}
	subs := make(map[int]*Deal, len(dealers))
	for _, i := range dealers {
		sub, err := s.SubDeal(d.Shares[i-1], newDeg, newIdx, rand.Reader)
		if err != nil {
			t.Fatalf("SubDeal(%d): %v", i, err)
		}
		// The sub-deal's zeroth commitment must match the dealer's old
		// share under the OLD commitments.
		if !s.G.Equal(sub.Commitments[0], s.CommitmentEval(d.Commitments, i)) {
			t.Fatalf("dealer %d sub-deal commits to a different value", i)
		}
		subs[i] = sub
	}
	// Combine shares per new holder and verify against combined commitments.
	subComms := make([][]*curve.Point, len(dealers))
	for k, di := range dealers {
		subComms[k] = subs[di].Commitments
	}
	combined, err := s.CombineCommitments(dealers, subComms)
	if err != nil {
		t.Fatalf("CombineCommitments: %v", err)
	}
	if !s.G.Equal(combined[0], d.Commitments[0]) {
		t.Fatal("reshare changed the committed secret")
	}
	newShares := make([]Share, 0, len(newIdx))
	for k, ni := range newIdx {
		vals := make([]*big.Int, len(dealers))
		for j, di := range dealers {
			vals[j] = subs[di].Shares[k].Value
		}
		v, err := s.CombineSubShares(dealers, vals)
		if err != nil {
			t.Fatalf("CombineSubShares(%d): %v", ni, err)
		}
		sh := Share{Index: ni, Value: v}
		if err := s.VerifyShare(combined, sh); err != nil {
			t.Fatalf("combined share %d rejected: %v", ni, err)
		}
		newShares = append(newShares, sh)
	}
	got, err := s.Reconstruct(newDeg, newShares)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatal("reshared holders reconstruct a different secret")
	}
	// Old and new shares must NOT mix: they lie on different polynomials.
	mixed, err := s.Reconstruct(newDeg, []Share{newShares[0], newShares[1], d.Shares[2]})
	if err == nil && mixed.Cmp(secret) == 0 {
		t.Fatal("mixing generations reconstructed the secret — reshare is not proactive")
	}
}

func TestBlindedExtraction(t *testing.T) {
	s := testSuite(t)
	zr := s.Zr
	gamma, err := zr.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.G.RandPoint(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	hID, err := zr.Rand(rand.Reader) // stands in for H(id)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	deg := PrivacyDegree(n) // 1 → quorum 3
	indices := []int{1, 2, 3, 4}
	d, err := s.Deal(gamma, deg, indices, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	quorum := indices[:Quorum(deg)]
	// Every quorum member contributes a blind deal.
	deals := make([]*BlindDeal, len(quorum))
	for k := range quorum {
		deals[k], err = s.BlindDeal(deg, quorum, rand.Reader)
		if err != nil {
			t.Fatalf("BlindDeal: %v", err)
		}
	}
	// Each member aggregates its r_i, z_i and publishes (u_i, P_i).
	partials := make([]ExtractPartial, 0, len(quorum))
	for _, i := range quorum {
		ri, zi := big.NewInt(0), big.NewInt(0)
		for _, bd := range deals {
			ri = zr.Add(ri, bd.R[i])
			zi = zr.Add(zi, bd.Z[i])
		}
		si := d.Shares[i-1].Value
		u := zr.Add(zr.Mul(ri, zr.Add(si, hID)), zi)
		partials = append(partials, ExtractPartial{Index: i, U: u, P: s.G.ScalarMult(g, ri)})
	}
	usk, err := s.CombineExtract(deg, partials)
	if err != nil {
		t.Fatalf("CombineExtract: %v", err)
	}
	inv, err := zr.Inv(zr.Add(gamma, hID))
	if err != nil {
		t.Fatal(err)
	}
	want := s.G.ScalarMult(g, inv)
	if !s.G.Equal(usk, want) {
		t.Fatal("blinded extraction produced the wrong user key")
	}
	// Too few partials must fail.
	if _, err := s.CombineExtract(deg, partials[:Quorum(deg)-1]); err == nil {
		t.Fatal("combined below the quorum")
	}
}
