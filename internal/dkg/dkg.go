// Package dkg implements the verifiable secret sharing that turns the IBBE
// master secret from a single sealed blob into a t-of-n threshold secret:
// Feldman-VSS dealing and verification over the existing curve/field
// arithmetic, Lagrange interpolation, proactive resharing to a new holder
// set, and the blinded-inversion protocol that lets a quorum of share
// holders jointly compute USK = g^(1/(γ+H(id))) without any party ever
// reconstructing γ.
//
// The commitment base is deliberately h = PK.HPowers[0], the same generator
// whose γ-powers make up the published public key: the zeroth Feldman
// commitment C₀ = h^γ then equals PK.HPowers[1], binding every sharing to
// the master public key already in the membership record — any observer can
// check that a reshare still shares the ORIGINAL secret.
//
// Why blinded inversion instead of "partial extract + Lagrange": the user
// secret key is g^(1/(γ+H(id))), and 1/f(x) is not a polynomial, so shares
// of γ cannot be combined into the inverse in one round. The classic
// Bar-Ilan–Beaver trick is used instead: the quorum jointly samples a
// random blinding r (each member deals a degree-d sharing of a fresh ρⱼ,
// plus a degree-2d sharing of zero that hides the cross terms), every
// member i publishes uᵢ = rᵢ·(sᵢ+H(id)) + zᵢ and Pᵢ = g^{rᵢ}, the
// coordinator interpolates u(0) = r·(γ+H(id)) from 2d+1 points, recovers
// g^r from d+1 of the Pᵢ, and computes USK = (g^r)^{1/u(0)} — revealing
// only the uniformly random product r·(γ+H(id)).
package dkg

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"github.com/ibbesgx/ibbesgx/internal/curve"
	"github.com/ibbesgx/ibbesgx/internal/ff"
	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

// Errors returned by the package.
var (
	// ErrShareInvalid reports a share failing its Feldman commitment check.
	ErrShareInvalid = errors.New("dkg: share does not match polynomial commitments")
	// ErrTooFewShares reports an interpolation below the required threshold.
	ErrTooFewShares = errors.New("dkg: not enough shares")
	// ErrBadIndex reports a zero, negative or duplicate share index.
	ErrBadIndex = errors.New("dkg: share indices must be distinct positive integers")
)

// Suite fixes the algebra one sharing lives in: the scalar field Z_r the
// secret and shares inhabit, the curve group the commitments live in, and
// the commitment base.
type Suite struct {
	// Zr is the scalar field (the pairing group order).
	Zr *ff.Field
	// G is the commitment group (G1 of the pairing).
	G *curve.Curve
	// Base is the Feldman commitment base.
	Base *curve.Point
}

// NewSuite builds a suite over the pairing's G1 with the given commitment
// base (IBBE uses h = PK.HPowers[0], see the package comment).
func NewSuite(p *pairing.Params, base *curve.Point) *Suite {
	return &Suite{Zr: p.Zr, G: p.G1, Base: base}
}

// PrivacyDegree returns the sharing polynomial degree d for n holders:
// the largest d with 2d+1 ≤ n (so a full blinded-extraction quorum fits),
// at least 1 once there are two holders (so no single holder ever knows
// the secret). d+1 holders reconstruct; d holders learn nothing.
func PrivacyDegree(n int) int {
	if n <= 1 {
		return 0
	}
	d := (n - 1) / 2
	if d < 1 {
		d = 1
	}
	return d
}

// Quorum returns the number of distinct holders a blinded extraction
// round needs at degree d: the 2d+1 evaluation points that determine the
// degree-2d product polynomial.
func Quorum(degree int) int { return 2*degree + 1 }

// Threshold returns the number of shares that reconstruct a degree-d
// secret: d+1.
func Threshold(degree int) int { return degree + 1 }

// Share is one evaluation of the sharing polynomial: Value = f(Index).
type Share struct {
	Index int
	Value *big.Int
}

// Deal is one dealer's output: the Feldman commitments C_j = Base^{a_j} to
// the polynomial coefficients, and the per-holder shares.
type Deal struct {
	Degree      int
	Commitments []*curve.Point
	Shares      []Share
}

// checkIndices validates a share-index set.
func checkIndices(indices []int) error {
	seen := make(map[int]bool, len(indices))
	for _, i := range indices {
		if i < 1 || seen[i] {
			return fmt.Errorf("%w: %v", ErrBadIndex, indices)
		}
		seen[i] = true
	}
	return nil
}

// randPoly draws a uniformly random degree-`degree` polynomial over Zr with
// the given constant term.
func (s *Suite) randPoly(constant *big.Int, degree int, rng io.Reader) ([]*big.Int, error) {
	coeffs := make([]*big.Int, degree+1)
	coeffs[0] = s.Zr.Reduce(new(big.Int).Set(constant))
	for j := 1; j <= degree; j++ {
		c, err := s.Zr.Rand(rng)
		if err != nil {
			return nil, fmt.Errorf("dkg: drawing coefficient: %w", err)
		}
		coeffs[j] = c
	}
	return coeffs, nil
}

// evalPoly evaluates the polynomial at x = index (Horner).
func (s *Suite) evalPoly(coeffs []*big.Int, index int) *big.Int {
	x := big.NewInt(int64(index))
	acc := new(big.Int).Set(coeffs[len(coeffs)-1])
	for j := len(coeffs) - 2; j >= 0; j-- {
		acc = s.Zr.Add(s.Zr.Mul(acc, x), coeffs[j])
	}
	return acc
}

// Deal shares `secret` at the given degree among the holder indices,
// committing to every coefficient. The secret is recoverable from any
// degree+1 shares; degree shares reveal nothing.
func (s *Suite) Deal(secret *big.Int, degree int, indices []int, rng io.Reader) (*Deal, error) {
	if err := checkIndices(indices); err != nil {
		return nil, err
	}
	if len(indices) < degree+1 {
		return nil, fmt.Errorf("dkg: %d holders cannot carry a degree-%d sharing", len(indices), degree)
	}
	coeffs, err := s.randPoly(secret, degree, rng)
	if err != nil {
		return nil, err
	}
	d := &Deal{Degree: degree, Commitments: make([]*curve.Point, degree+1)}
	for j, a := range coeffs {
		// Constant-time: the coefficients are the sharing polynomial's
		// secrets (a_0 is the dealt secret itself).
		d.Commitments[j] = s.G.ScalarMultConstTime(s.Base, a)
	}
	d.Shares = make([]Share, len(indices))
	for k, i := range indices {
		d.Shares[k] = Share{Index: i, Value: s.evalPoly(coeffs, i)}
	}
	return d, nil
}

// CommitmentEval evaluates the committed polynomial in the exponent:
// Base^{f(index)} = Π_j C_j^{index^j}.
func (s *Suite) CommitmentEval(comms []*curve.Point, index int) *curve.Point {
	x := big.NewInt(int64(index))
	scalars := make([]*big.Int, len(comms))
	acc := big.NewInt(1)
	for j := range comms {
		scalars[j] = new(big.Int).Set(acc)
		acc = s.Zr.Mul(acc, x)
	}
	return s.G.MultiExp(comms, scalars)
}

// VerifyShare checks a share against the dealer's commitments:
// Base^{share} must equal the committed polynomial at the share's index.
func (s *Suite) VerifyShare(comms []*curve.Point, sh Share) error {
	if sh.Index < 1 || sh.Value == nil {
		return ErrBadIndex
	}
	// Constant-time: the share value stays secret even though the
	// commitment comparison below is public.
	lhs := s.G.ScalarMultConstTime(s.Base, sh.Value)
	if !s.G.Equal(lhs, s.CommitmentEval(comms, sh.Index)) {
		return fmt.Errorf("%w (index %d)", ErrShareInvalid, sh.Index)
	}
	return nil
}

// LagrangeAtZero returns the interpolation weights λ_i with
// f(0) = Σ λ_i·f(i) for the given distinct indices.
func (s *Suite) LagrangeAtZero(indices []int) (map[int]*big.Int, error) {
	if err := checkIndices(indices); err != nil {
		return nil, err
	}
	out := make(map[int]*big.Int, len(indices))
	for _, i := range indices {
		num := big.NewInt(1)
		den := big.NewInt(1)
		xi := big.NewInt(int64(i))
		for _, j := range indices {
			if j == i {
				continue
			}
			xj := big.NewInt(int64(j))
			num = s.Zr.Mul(num, xj)
			den = s.Zr.Mul(den, s.Zr.Sub(xj, xi))
		}
		inv, err := s.Zr.Inv(den)
		if err != nil {
			return nil, fmt.Errorf("dkg: degenerate index set %v: %w", indices, err)
		}
		out[i] = s.Zr.Mul(num, inv)
	}
	return out, nil
}

// Reconstruct interpolates the secret f(0) from the given shares. The
// caller must supply at least degree+1 shares of the SAME polynomial;
// shares of inconsistent polynomials produce garbage (use VerifyShare
// against the published commitments first).
func (s *Suite) Reconstruct(degree int, shares []Share) (*big.Int, error) {
	if len(shares) < degree+1 {
		return nil, fmt.Errorf("%w: %d of %d", ErrTooFewShares, len(shares), degree+1)
	}
	use := shares[:degree+1]
	indices := make([]int, len(use))
	for k, sh := range use {
		indices[k] = sh.Index
	}
	lam, err := s.LagrangeAtZero(indices)
	if err != nil {
		return nil, err
	}
	acc := big.NewInt(0)
	for _, sh := range use {
		acc = s.Zr.Add(acc, s.Zr.Mul(lam[sh.Index], sh.Value))
	}
	return acc, nil
}

// SubDeal re-shares one EXISTING share to a new holder set: the old holder
// at oldShare.Index deals its share value at newDegree among newIndices.
// The returned deal's zeroth commitment is Base^{oldShare.Value}, which any
// party can check against CommitmentEval(oldComms, oldShare.Index) — a
// corrupt dealer cannot smuggle a different value into the reshare.
func (s *Suite) SubDeal(oldShare Share, newDegree int, newIndices []int, rng io.Reader) (*Deal, error) {
	return s.Deal(oldShare.Value, newDegree, newIndices, rng)
}

// CombineSubShares folds the sub-shares a NEW holder received from the
// dealer set T (old indices) into its share of the original secret:
// f'(k) = Σ_{i∈T} λ_i·f_i(k). Every new holder must combine over the SAME
// dealer set, otherwise the resulting shares lie on different polynomials.
func (s *Suite) CombineSubShares(oldIndices []int, values []*big.Int) (*big.Int, error) {
	if len(oldIndices) != len(values) {
		return nil, errors.New("dkg: dealer set and sub-share count differ")
	}
	lam, err := s.LagrangeAtZero(oldIndices)
	if err != nil {
		return nil, err
	}
	acc := big.NewInt(0)
	for k, i := range oldIndices {
		acc = s.Zr.Add(acc, s.Zr.Mul(lam[i], values[k]))
	}
	return acc, nil
}

// CombineCommitments folds the dealers' sub-deal commitments into the new
// sharing's commitments: C'_j = Π_{i∈T} C_{i,j}^{λ_i}. The zeroth combined
// commitment equals the ORIGINAL C₀ = Base^secret, which is how observers
// verify a reshare preserved the secret.
func (s *Suite) CombineCommitments(oldIndices []int, comms [][]*curve.Point) ([]*curve.Point, error) {
	if len(oldIndices) != len(comms) {
		return nil, errors.New("dkg: dealer set and commitment count differ")
	}
	if len(comms) == 0 {
		return nil, ErrTooFewShares
	}
	width := len(comms[0])
	for _, cs := range comms {
		if len(cs) != width {
			return nil, errors.New("dkg: ragged sub-deal commitments")
		}
	}
	lam, err := s.LagrangeAtZero(oldIndices)
	if err != nil {
		return nil, err
	}
	out := make([]*curve.Point, width)
	for j := 0; j < width; j++ {
		points := make([]*curve.Point, len(comms))
		scalars := make([]*big.Int, len(comms))
		for k, i := range oldIndices {
			points[k] = comms[k][j]
			scalars[k] = lam[i]
		}
		out[j] = s.G.MultiExp(points, scalars)
	}
	return out, nil
}

// BlindDeal is one quorum member's contribution to a blinded-extraction
// round: a degree-d sharing of a fresh random ρ (R) and a degree-2d sharing
// of zero (Z). Summing every member's contributions gives each holder i its
// blinding share r_i (degree d, of r = Σρ_j) and masking share z_i (degree
// 2d, of 0) — the zero-sharing hides the cross terms of r_i·(s_i+H(id)) so
// the published u_i values reveal nothing beyond u(0).
type BlindDeal struct {
	// R maps holder index → share of this dealer's random ρ (degree d).
	R map[int]*big.Int
	// Z maps holder index → share of zero (degree 2d).
	Z map[int]*big.Int
}

// BlindDeal draws one member's round contribution for the given quorum
// indices at sharing degree `degree` (the master sharing's degree d).
func (s *Suite) BlindDeal(degree int, indices []int, rng io.Reader) (*BlindDeal, error) {
	if err := checkIndices(indices); err != nil {
		return nil, err
	}
	if len(indices) < Quorum(degree) {
		return nil, fmt.Errorf("%w: blind round needs %d holders, got %d", ErrTooFewShares, Quorum(degree), len(indices))
	}
	rho, err := s.Zr.Rand(rng)
	if err != nil {
		return nil, fmt.Errorf("dkg: drawing blinding: %w", err)
	}
	rPoly, err := s.randPoly(rho, degree, rng)
	if err != nil {
		return nil, err
	}
	zPoly, err := s.randPoly(big.NewInt(0), 2*degree, rng)
	if err != nil {
		return nil, err
	}
	bd := &BlindDeal{R: make(map[int]*big.Int, len(indices)), Z: make(map[int]*big.Int, len(indices))}
	for _, i := range indices {
		bd.R[i] = s.evalPoly(rPoly, i)
		bd.Z[i] = s.evalPoly(zPoly, i)
	}
	return bd, nil
}

// ExtractPartial is one holder's public output in a blinded extraction
// round: U = r_i·(s_i + H(id)) + z_i and P = g^{r_i}, where g is the
// extraction base (the IBBE generator the user key is a power of).
type ExtractPartial struct {
	Index int
	U     *big.Int
	P     *curve.Point
}

// CombineExtract finishes a blinded extraction: given ≥ 2d+1 partials it
// interpolates u(0) = r·(γ+H(id)), recovers g^r from d+1 of the P_i, and
// returns USK = (g^r)^{1/u(0)} = g^{1/(γ+H(id))}. Only the coordinator
// (inside an enclave — the result IS the user secret key) calls this.
func (s *Suite) CombineExtract(degree int, partials []ExtractPartial) (*curve.Point, error) {
	need := Quorum(degree)
	if len(partials) < need {
		return nil, fmt.Errorf("%w: blinded extraction needs %d partials, got %d", ErrTooFewShares, need, len(partials))
	}
	use := partials[:need]
	indices := make([]int, len(use))
	for k, p := range use {
		indices[k] = p.Index
	}
	lamWide, err := s.LagrangeAtZero(indices)
	if err != nil {
		return nil, err
	}
	u0 := big.NewInt(0)
	for _, p := range use {
		u0 = s.Zr.Add(u0, s.Zr.Mul(lamWide[p.Index], p.U))
	}
	inv, err := s.Zr.Inv(u0)
	if err != nil {
		// u(0) = r·(γ+H(id)) vanishes only if r = 0 or H(id) = −γ.
		return nil, fmt.Errorf("dkg: degenerate blinding, retry the round: %w", err)
	}
	// g^r from the first d+1 partials (r_i is a degree-d sharing), with the
	// final inversion folded into one multi-exponentiation:
	// USK = Π P_i^{λ'_i / u(0)}.
	narrow := use[:degree+1]
	nIdx := make([]int, len(narrow))
	for k, p := range narrow {
		nIdx[k] = p.Index
	}
	lamNarrow, err := s.LagrangeAtZero(nIdx)
	if err != nil {
		return nil, err
	}
	points := make([]*curve.Point, len(narrow))
	scalars := make([]*big.Int, len(narrow))
	for k, p := range narrow {
		points[k] = p.P
		scalars[k] = s.Zr.Mul(lamNarrow[p.Index], inv)
	}
	return s.G.MultiExp(points, scalars), nil
}
