package dkg

import (
	"errors"
	"fmt"

	"github.com/ibbesgx/ibbesgx/internal/curve"
)

// Record is the published state of one threshold sharing — it rides inside
// the fenced membership record, so the commitments every party verifies
// shares against are protected by the same CAS/epoch machinery as the
// member set itself. Everything here is public or sealed: commitments and
// the extraction base are public values, and the per-holder share blobs
// are sealed to the enclave measurement (only enclave code on the cluster
// platform can open them), so the record reveals nothing about γ.
type Record struct {
	// Generation counts sharings of this secret; a reshare bumps it. It
	// tracks the membership epoch that triggered the (re)share.
	Generation uint64 `json:"generation"`
	// Degree is the sharing polynomial degree d (quorum 2d+1, recovery d+1).
	Degree int `json:"degree"`
	// Commitments are the marshalled Feldman commitments C_j = h^{a_j};
	// C₀ = h^γ equals PK.HPowers[1], binding the sharing to the master
	// public key.
	Commitments [][]byte `json:"commitments"`
	// ExtractBase is the marshalled IBBE generator g the user keys are
	// powers of. Public in threshold mode (hardness rests on q-SDH, not on
	// g's secrecy); needed by every holder to publish P_i = g^{r_i}.
	ExtractBase []byte `json:"extract_base"`
	// MasterPK is the marshalled IBBE public key, so a restarted cluster
	// re-adopts the exact key instead of minting a fresh secret.
	MasterPK []byte `json:"master_pk"`
	// Holders maps shard ID → share index (1-based).
	Holders map[string]int `json:"holders"`
	// SealedShares maps shard ID → its persistent sealed share blob, so a
	// full-cluster restart recovers every share from the store.
	SealedShares map[string][]byte `json:"sealed_shares"`
}

// ParseCommitments unmarshals the commitment points into the given group.
func (r *Record) ParseCommitments(g *curve.Curve) ([]*curve.Point, error) {
	if len(r.Commitments) == 0 {
		return nil, errors.New("dkg: record has no commitments")
	}
	out := make([]*curve.Point, len(r.Commitments))
	for j, b := range r.Commitments {
		p, err := g.Unmarshal(b)
		if err != nil {
			return nil, fmt.Errorf("dkg: commitment %d: %w", j, err)
		}
		out[j] = p
	}
	return out, nil
}

// Index returns the share index of a holder (0 if the shard holds none).
func (r *Record) Index(shardID string) int { return r.Holders[shardID] }

// Indices returns every holder's share index, in no particular order.
func (r *Record) Indices() []int {
	out := make([]int, 0, len(r.Holders))
	for _, i := range r.Holders {
		out = append(out, i)
	}
	return out
}

// Clone deep-copies the record (maps and blobs included), so provisioner
// snapshots never alias a record a concurrent reshare mutates.
func (r *Record) Clone() *Record {
	if r == nil {
		return nil
	}
	out := &Record{
		Generation:   r.Generation,
		Degree:       r.Degree,
		Commitments:  make([][]byte, len(r.Commitments)),
		ExtractBase:  append([]byte(nil), r.ExtractBase...),
		MasterPK:     append([]byte(nil), r.MasterPK...),
		Holders:      make(map[string]int, len(r.Holders)),
		SealedShares: make(map[string][]byte, len(r.SealedShares)),
	}
	for j, b := range r.Commitments {
		out.Commitments[j] = append([]byte(nil), b...)
	}
	for id, i := range r.Holders {
		out.Holders[id] = i
	}
	for id, b := range r.SealedShares {
		out.SealedShares[id] = append([]byte(nil), b...)
	}
	return out
}
