package benchmark

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/ibbe"
)

// CryptoRow is one cell of the crypto fast-path figure: a single IBBE
// operation at receiver-set size m, timed through the reference arithmetic
// ("slow": double-and-add scalar multiplication, per-coefficient HPowers
// loop, square-and-multiply GT ladder, uncached identity hashing) and
// through the fast path (w-NAF windows, fixed-base tables, interleaved
// Straus multi-exponentiation, batch normalisation, hash memo) that now
// underlies every partition ECALL.
type CryptoRow struct {
	Op    string `json:"op"`
	M     int    `json:"m"`
	Iters int    `json:"iters"`

	SlowNs int64 `json:"slow_ns_per_op"`
	FastNs int64 `json:"fast_ns_per_op"`

	// Heap allocations per call, averaged over the timing loop. The limb
	// fast path works in fixed-width stack arrays, so its counts expose any
	// accidental big.Int round-trips the ns column might hide in noise.
	SlowAllocs int64 `json:"slow_allocs_per_op"`
	FastAllocs int64 `json:"fast_allocs_per_op"`

	Speedup float64 `json:"speedup"`
}

// cryptoSizes is the m sweep of the crypto figure. 256 is deliberately far
// past the CI partition sizes: the multi-exponentiation advantage grows with
// m, and the acceptance bar (≥3× EncryptMSK, ≥2× Decrypt) is set there.
var cryptoSizes = []int{8, 64, 256}

// cryptoIters picks the per-op iteration count so the slow arm stays
// CI-friendly even at m = 256.
func cryptoIters(m int) int {
	switch {
	case m <= 8:
		return 12
	case m <= 64:
		return 6
	default:
		return 3
	}
}

// RunCrypto measures Setup, EncryptMSK, Decrypt and Rekey old-path vs
// fast-path on the same key material. Both arms run against the same
// msk/pk/ciphertext inputs, so every measured pair computes the identical
// group elements (the differential tests in internal/ibbe assert exactly
// that, bit for bit); only the arithmetic route differs. Each arm gets one
// untimed warm-up call: for the fast arm that builds the per-key tables the
// steady state of a long-lived partition key runs on.
func RunCrypto(cfg Config) ([]CryptoRow, error) {
	rows := make([]CryptoRow, 0, 4*len(cryptoSizes))
	for _, m := range cryptoSizes {
		slow := ibbe.NewScheme(cfg.Params)
		slow.DisableFastPath = true
		fast := ibbe.NewScheme(cfg.Params)

		row := func(op string, iters int, slowFn, fastFn func() error) (CryptoRow, error) {
			r := CryptoRow{Op: op, M: m, Iters: iters}
			var err error
			if r.SlowNs, r.SlowAllocs, err = timePerOp(iters, slowFn); err != nil {
				return r, fmt.Errorf("%s m=%d slow: %w", op, m, err)
			}
			if r.FastNs, r.FastAllocs, err = timePerOp(iters, fastFn); err != nil {
				return r, fmt.Errorf("%s m=%d fast: %w", op, m, err)
			}
			if r.FastNs > 0 {
				r.Speedup = float64(r.SlowNs) / float64(r.FastNs)
			}
			return r, nil
		}

		// Setup: timed on fresh keys each iteration, so the fast arm pays its
		// fixed-base table construction inside the measurement.
		r, err := row("Setup", cryptoIters(m),
			func() error { _, _, err := slow.Setup(m, nil); return err },
			func() error { _, _, err := fast.Setup(m, nil); return err })
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)

		// The remaining operations share one key set and one ciphertext, so
		// the two arms time the very same mathematical operation.
		msk, pk, err := fast.Setup(m, nil)
		if err != nil {
			return nil, err
		}
		group := names(m, "crypto")
		uk, err := fast.Extract(msk, group[0])
		if err != nil {
			return nil, err
		}
		_, ct, err := fast.EncryptMSK(msk, pk, group, nil)
		if err != nil {
			return nil, err
		}

		// EncryptMSK and Rekey stay cheap at every m (that is the point of
		// the scheme), so they get a fixed, higher iteration count; Decrypt
		// is quadratic in m and scales its count down like Setup.
		ops := []struct {
			name  string
			iters int
			run   func(s *ibbe.Scheme) error
		}{
			{"EncryptMSK", 12, func(s *ibbe.Scheme) error {
				_, _, err := s.EncryptMSK(msk, pk, group, nil)
				return err
			}},
			{"Decrypt", cryptoIters(m), func(s *ibbe.Scheme) error {
				_, err := s.Decrypt(pk, group[0], uk, group, ct)
				return err
			}},
			{"Rekey", 12, func(s *ibbe.Scheme) error {
				_, _, err := s.Rekey(pk, ct, nil)
				return err
			}},
		}
		for _, op := range ops {
			// Warm up both arms (fast arm: builds the pk tables once).
			if err := op.run(slow); err != nil {
				return nil, fmt.Errorf("%s m=%d warmup: %w", op.name, m, err)
			}
			if err := op.run(fast); err != nil {
				return nil, fmt.Errorf("%s m=%d warmup: %w", op.name, m, err)
			}
			r, err := row(op.name, op.iters,
				func() error { return op.run(slow) },
				func() error { return op.run(fast) })
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// timePerOp runs f iters times and returns the fastest single call plus the
// mean heap allocations per call. The minimum is the standard noise-robust
// latency estimator here: an op's cost has a hard arithmetic floor, so
// scheduler preemption and GC pauses can only inflate samples, never deflate
// them. Allocations, by contrast, are deterministic per call (modulo slice
// growth on the first iteration), so the mean over the loop is exact enough.
func timePerOp(iters int, f func() error) (int64, int64, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs := ms.Mallocs
	best := int64(-1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, 0, err
		}
		if d := time.Since(start).Nanoseconds(); best < 0 || d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&ms)
	allocs := int64(ms.Mallocs-mallocs) / int64(iters)
	return best, allocs, nil
}

// PrintCrypto writes the crypto fast-path table.
func PrintCrypto(w io.Writer, rows []CryptoRow) {
	fmt.Fprintln(w, "Crypto — reference arithmetic vs fixed-base/w-NAF/Straus fast path (same keys, same outputs)")
	fmt.Fprintf(w, "%12s  %5s  %12s  %12s  %8s  %12s  %12s\n",
		"op", "m", "old", "new", "speedup", "old allocs", "new allocs")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s  %5d  %12s  %12s  %7.2fx  %12d  %12d\n",
			r.Op, r.M, Dur(time.Duration(r.SlowNs)), Dur(time.Duration(r.FastNs)), r.Speedup,
			r.SlowAllocs, r.FastAllocs)
	}
	var encMax, decMax CryptoRow
	for _, r := range rows {
		if r.Op == "EncryptMSK" && r.M >= encMax.M {
			encMax = r
		}
		if r.Op == "Decrypt" && r.M >= decMax.M {
			decMax = r
		}
	}
	if encMax.M > 0 && decMax.M > 0 {
		fmt.Fprintf(w, "shape: at m=%d the table-driven path is %.1fx on EncryptMSK and %.1fx on Decrypt; outputs are bit-identical to the reference path\n",
			encMax.M, encMax.Speedup, decMax.Speedup)
	}
}
