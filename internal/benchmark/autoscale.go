package benchmark

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/cluster"
	"github.com/ibbesgx/ibbesgx/internal/storage"
	"github.com/ibbesgx/ibbesgx/internal/trace"
)

// AutoscaleRow is one phase of the autoscaling figure: a mixed membership
// workload runs continuously while the cluster.Autoscaler — not an
// operator — grows the cluster from 2 to 4 shards off its load signal
// (groups owned × weighted crypto-op rate). The "pre" row is the loaded
// steady state at 2 shards before the controller starts; "grow" covers the
// window from enabling the controller to the membership reaching 4
// members, measuring the controller's reaction time and the worst
// single-op latency any client saw while it acted; "post" is the steady
// state at 4.
type AutoscaleRow struct {
	Phase  string `json:"phase"` // pre | grow | post
	Shards int    `json:"shards"`
	Groups int    `json:"groups"`
	Ops    int    `json:"ops"`

	Elapsed   time.Duration `json:"elapsed_ns"`
	OpsPerSec float64       `json:"ops_per_sec"`

	// Grow-only fields.
	// Reaction is the wall time from starting the controller under load to
	// the persisted membership reaching the target member count.
	Reaction time.Duration `json:"reaction_ns,omitempty"`
	// EpochStart/EpochEnd bracket the controller's changes (each grow
	// bumps the persisted epoch by one).
	EpochStart uint64 `json:"epoch_start,omitempty"`
	EpochEnd   uint64 `json:"epoch_end,omitempty"`
	// MaxOpLatency is the worst single-op latency during the grow window.
	MaxOpLatency time.Duration `json:"max_op_latency_ns,omitempty"`
}

// autoscaleTarget is the member count the controller must reach.
const autoscaleTarget = 4

// RunAutoscale measures the load-driven 2→4 grow: 8 groups churn
// memberships through the shard handlers (same injected cloud PUT latency
// as the other cluster figures) while an Autoscaler with a deliberately
// low grow threshold reacts to the load. Every operation must succeed —
// the controller's changes ride the same persisted-membership hand-off
// path the rebalance figure exercises.
func RunAutoscale(cfg Config) ([]AutoscaleRow, error) {
	const groups = 8
	opsPerGroup := cfg.SyntheticOps / 12
	if opsPerGroup < 9 {
		opsPerGroup = 9
	}
	slice := opsPerGroup / 3
	initial := cfg.Capacity * 2

	traces := make([]*trace.Trace, groups)
	for i := range traces {
		tr, err := trace.Synthetic(trace.SyntheticConfig{
			Ops:            slice * 3,
			RevocationRate: 0.3,
			InitialSize:    initial,
			Seed:           cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		traces[i] = tr
	}

	mem := storage.NewMemStore(storage.Latency{Put: benchPutLatency})
	c, err := cluster.New(cluster.Options{
		Shards:   2,
		Capacity: cfg.Capacity,
		Params:   cfg.Params,
		Store:    mem,
		LeaseTTL: 10 * time.Minute, // no expiry churn inside a bench run
		Seed:     cfg.Seed,
		Workers:  1,
	})
	if err != nil {
		return nil, err
	}
	groupName := func(i int) string { return fmt.Sprintf("autoscale-g%03d", i) }
	for i, tr := range traces {
		if err := rebalanceOp(c, groupName(i), "create", map[string]any{
			"group": groupName(i), "members": tr.Initial,
		}); err != nil {
			return nil, err
		}
	}

	// The controller: any sustained load should grow the cluster (threshold
	// ~one weighted exponentiation per second per member), sampled fast so
	// the figure measures reaction, not polling slack.
	as := cluster.NewAutoscaler(c, cluster.AutoscalerConfig{
		Min:      2,
		Max:      autoscaleTarget,
		GrowLoad: 1_000,
		Interval: 25 * time.Millisecond,
		Cooldown: 50 * time.Millisecond,
	})
	defer as.Stop()

	runPhase := func(from, to int) (int, time.Duration, time.Duration, error) {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
			total    int
			maxLat   time.Duration
		)
		start := time.Now()
		for i := range traces {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				g := groupName(i)
				ops := 0
				worst := time.Duration(0)
				for _, op := range traces[i].Ops[from:to] {
					route := "add"
					if op.Kind == trace.OpRemove {
						route = "remove"
					}
					opStart := time.Now()
					err := rebalanceOp(c, g, route, map[string]any{"group": g, "user": op.User})
					if lat := time.Since(opStart); lat > worst {
						worst = lat
					}
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("%s %s on %s: %w", route, op.User, g, err)
						}
						mu.Unlock()
						return
					}
					ops++
				}
				mu.Lock()
				total += ops
				if worst > maxLat {
					maxLat = worst
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		return total, time.Since(start), maxLat, firstErr
	}

	row := func(phase string, shards, ops int, elapsed time.Duration) AutoscaleRow {
		r := AutoscaleRow{Phase: phase, Shards: shards, Groups: groups, Ops: ops, Elapsed: elapsed}
		if ops > 0 && elapsed > 0 {
			r.OpsPerSec = float64(ops) / elapsed.Seconds()
		}
		return r
	}
	rows := make([]AutoscaleRow, 0, 3)

	// Phase 1: loaded steady state on 2 shards, controller off.
	ops, elapsed, _, err := runPhase(0, slice)
	if err != nil {
		return nil, fmt.Errorf("pre phase: %w", err)
	}
	rows = append(rows, row("pre", 2, ops, elapsed))

	// Phase 2: a continuous churn workload (each driver cycles an add +
	// remove of a synthetic user) keeps the load signal alive for as long
	// as the controller needs; the phase ends when the persisted membership
	// reaches 4 members. The reaction time is start-of-controller →
	// target-member-count.
	epochStart := c.Epoch()
	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		mu       sync.Mutex
		churnOps int
		maxLat   time.Duration
		churnErr error
	)
	growStart := time.Now()
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := groupName(i)
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				u := fmt.Sprintf("%s-churn%03d@example.com", g, k)
				for _, route := range []string{"add", "remove"} {
					opStart := time.Now()
					err := rebalanceOp(c, g, route, map[string]any{"group": g, "user": u})
					lat := time.Since(opStart)
					mu.Lock()
					if lat > maxLat {
						maxLat = lat
					}
					if err != nil && churnErr == nil {
						churnErr = fmt.Errorf("%s %s on %s: %w", route, u, g, err)
					}
					churnOps++
					mu.Unlock()
					if err != nil {
						return
					}
				}
			}
		}(i)
	}
	as.Start()
	reaction, err := waitForMembers(c, autoscaleTarget, growStart, 60*time.Second)
	close(stop)
	wg.Wait()
	growElapsed := time.Since(growStart)
	if err != nil {
		return nil, err
	}
	if churnErr != nil {
		return nil, fmt.Errorf("grow phase: %w", churnErr)
	}
	as.Stop() // freeze the member set for the post phase
	grow := row("grow", autoscaleTarget, churnOps, growElapsed)
	grow.Reaction = reaction
	grow.EpochStart = epochStart
	grow.EpochEnd = c.Epoch()
	grow.MaxOpLatency = maxLat
	rows = append(rows, grow)

	if got := len(c.Membership().Members()); got != autoscaleTarget {
		return nil, fmt.Errorf("benchmark: autoscaler settled on %d members, want %d", got, autoscaleTarget)
	}

	// Phase 3: steady state on 4 shards.
	ops, elapsed, _, err = runPhase(slice, 2*slice)
	if err != nil {
		return nil, fmt.Errorf("post phase: %w", err)
	}
	rows = append(rows, row("post", autoscaleTarget, ops, elapsed))
	return rows, nil
}

// waitForMembers polls the cluster until its membership has n members,
// returning the elapsed time since start.
func waitForMembers(c *cluster.Cluster, n int, start time.Time, timeout time.Duration) (time.Duration, error) {
	deadline := start.Add(timeout)
	for {
		if len(c.Membership().Members()) >= n {
			return time.Since(start), nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("benchmark: autoscaler did not reach %d members within %v (at %d)",
				n, timeout, len(c.Membership().Members()))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// PrintAutoscale writes the autoscaling table.
func PrintAutoscale(w io.Writer, rows []AutoscaleRow) {
	fmt.Fprintln(w, "Autoscale — load-driven grow 2→4 shards under a mixed add/remove workload (controller, not operator)")
	fmt.Fprintf(w, "%6s  %7s  %7s  %7s  %12s  %10s  %12s  %8s  %14s\n",
		"phase", "shards", "groups", "ops", "elapsed", "ops/s", "reaction", "epochs", "max-op-pause")
	for _, r := range rows {
		reaction, epochs, pause := "", "", ""
		if r.Phase == "grow" {
			reaction = Dur(r.Reaction)
			epochs = fmt.Sprintf("%d→%d", r.EpochStart, r.EpochEnd)
			pause = Dur(r.MaxOpLatency)
		}
		fmt.Fprintf(w, "%6s  %7d  %7d  %7d  %12s  %10.1f  %12s  %8s  %14s\n",
			r.Phase, r.Shards, r.Groups, r.Ops, Dur(r.Elapsed), r.OpsPerSec, reaction, epochs, pause)
	}
	if len(rows) == 3 {
		pre, grow, post := rows[0], rows[1], rows[2]
		fmt.Fprintf(w, "shape: controller grew 2→4 in %s with zero failed ops (epochs %d→%d, worst client pause %s); steady state %.1f ops/s before vs %.1f after\n",
			Dur(grow.Reaction), grow.EpochStart, grow.EpochEnd, Dur(grow.MaxOpLatency), pre.OpsPerSec, post.OpsPerSec)
	}
}
