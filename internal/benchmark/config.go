package benchmark

import (
	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

// Config selects the experiment scale. The paper's grid (groups up to one
// million users on 512-bit Type-A parameters) takes hours in pure Go, so a
// reduced CI grid with identical *shape* is the default; `ibbe-bench
// -scale=paper` selects the full grid.
type Config struct {
	// Params is the pairing parameter set.
	Params *pairing.Params
	// GroupSizes is the x-axis of Figs. 2 and 7a.
	GroupSizes []int
	// PartitionSizes is the x-axis of Figs. 6, 7b, 8b and the Fig. 9 sweep.
	PartitionSizes []int
	// Capacity is the default partition size where one is needed (Fig. 7a
	// uses 1000 in the paper).
	Capacity int
	// AddSamples is the number of timed add operations for the Fig. 8a CDF.
	AddSamples int
	// ExtractSamples is the number of timed key extractions for Fig. 6b.
	ExtractSamples int
	// KernelOps / KernelPeak shape the Fig. 9 trace.
	KernelOps, KernelPeak int
	// Fig9Partitions is the partition-size sweep for Fig. 9.
	Fig9Partitions []int
	// SyntheticOps / SyntheticInitial shape the Fig. 10 traces.
	SyntheticOps, SyntheticInitial int
	// Fig10Partitions is the partition-size sweep for Fig. 10.
	Fig10Partitions []int
	// WLUsers / WLGroups size the million-user scenario sweep (the paper
	// scale is 10^6 users across 10^4 groups).
	WLUsers, WLGroups int
	// WLDiurnalOps is the diurnal churn phase's op count.
	WLDiurnalOps int
	// MaxResidentPages bounds per-group page residency during the sweep
	// (the paged manager's LRU limit).
	MaxResidentPages int
	// Seed drives every deterministic choice.
	Seed int64
}

// CIScale returns the fast grid used by tests and default bench runs. The
// ratios between points match the paper's grid (× decades for group sizes,
// 1:2:3:4 partition sizes) so every shape conclusion carries over.
func CIScale() Config {
	return Config{
		Params:           pairing.TypeA160(),
		GroupSizes:       []int{32, 64, 128, 256},
		PartitionSizes:   []int{8, 16, 24, 32},
		Capacity:         16,
		AddSamples:       64,
		ExtractSamples:   32,
		KernelOps:        1_200,
		KernelPeak:       120,
		Fig9Partitions:   []int{12, 24, 48, 96},
		SyntheticOps:     250,
		SyntheticInitial: 300,
		Fig10Partitions:  []int{16, 24, 32},
		WLUsers:          10_000,
		WLGroups:         100,
		WLDiurnalOps:     600,
		MaxResidentPages: 8,
		Seed:             2018,
	}
}

// PaperScale returns the full evaluation grid of the paper.
func PaperScale() Config {
	return Config{
		Params:           pairing.TypeA512(),
		GroupSizes:       []int{1_000, 10_000, 100_000, 1_000_000},
		PartitionSizes:   []int{1_000, 2_000, 3_000, 4_000},
		Capacity:         1_000,
		AddSamples:       1_000,
		ExtractSamples:   1_000,
		KernelOps:        43_468,
		KernelPeak:       2_803,
		Fig9Partitions:   []int{250, 500, 750, 1_000, 1_500, 2_803},
		SyntheticOps:     10_000,
		SyntheticInitial: 5_000,
		Fig10Partitions:  []int{1_000, 1_500, 2_000},
		WLUsers:          1_000_000,
		WLGroups:         10_000,
		WLDiurnalOps:     20_000,
		MaxResidentPages: 64,
		Seed:             2018,
	}
}

// MediumScale sits between the two: large enough that the order-of-
// magnitude statements become visible, small enough for a coffee break.
func MediumScale() Config {
	return Config{
		Params:           pairing.TypeA256(),
		GroupSizes:       []int{100, 1_000, 10_000},
		PartitionSizes:   []int{100, 200, 300, 400},
		Capacity:         100,
		AddSamples:       200,
		ExtractSamples:   100,
		KernelOps:        8_000,
		KernelPeak:       600,
		Fig9Partitions:   []int{50, 100, 200, 400},
		SyntheticOps:     1_000,
		SyntheticInitial: 1_200,
		Fig10Partitions:  []int{100, 150, 200},
		WLUsers:          100_000,
		WLGroups:         1_000,
		WLDiurnalOps:     4_000,
		MaxResidentPages: 32,
		Seed:             2018,
	}
}

// ScaleByName maps a -scale flag value to a Config.
func ScaleByName(name string) (Config, bool) {
	switch name {
	case "ci", "":
		return CIScale(), true
	case "medium":
		return MediumScale(), true
	case "paper":
		return PaperScale(), true
	default:
		return Config{}, false
	}
}
