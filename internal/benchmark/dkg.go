package benchmark

import (
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"io"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/cluster"
	"github.com/ibbesgx/ibbesgx/internal/storage"
)

// DKGRow is one provisioning mode's user-key extraction cost. The sealed
// row is the paper's baseline — one enclave holding the full master secret
// extracts locally. The threshold row runs the same extraction through the
// Feldman-VSS share-holder quorum (blinded partial evaluations plus a
// combine, no enclave ever reconstructing the secret); its overhead over
// the baseline is the price of removing the single point of compromise.
type DKGRow struct {
	Mode    string `json:"mode"`
	Shards  int    `json:"shards"`
	Samples int    `json:"samples"`

	Elapsed      time.Duration `json:"elapsed_ns"`
	NsPerExtract int64         `json:"ns_per_extract"`
	PerSec       float64       `json:"extracts_per_sec"`
}

// Ratio returns this row's per-extraction cost relative to base.
func (r DKGRow) Ratio(base DKGRow) float64 {
	if base.NsPerExtract == 0 {
		return 0
	}
	return float64(r.NsPerExtract) / float64(base.NsPerExtract)
}

// dkgShards is the threshold cluster size (privacy degree 1: quorum 3,
// recovery floor 2) — the acceptance configuration.
const dkgShards = 4

// RunDKG times user-key extraction under both provisioning modes.
func RunDKG(cfg Config) ([]DKGRow, error) {
	rows := make([]DKGRow, 0, 2)
	for _, mode := range []cluster.ProvisioningMode{cluster.ProvisionSealed, cluster.ProvisionThreshold} {
		row, err := runDKGOnce(cfg, mode)
		if err != nil {
			return nil, fmt.Errorf("dkg %s: %w", mode, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runDKGOnce(cfg Config, mode cluster.ProvisioningMode) (DKGRow, error) {
	shards := 1
	if mode == cluster.ProvisionThreshold {
		shards = dkgShards
	}
	c, err := cluster.New(cluster.Options{
		Shards:       shards,
		Capacity:     cfg.Capacity,
		Params:       cfg.Params,
		Store:        storage.NewMemStore(storage.Latency{}),
		LeaseTTL:     10 * time.Minute,
		Seed:         cfg.Seed,
		Provisioning: mode,
	})
	if err != nil {
		return DKGRow{}, err
	}
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return DKGRow{}, err
	}
	extract := c.Provisioner().Extract
	// Warm-up outside the timed region (table initialisation, first-use
	// allocations), then the timed samples.
	if _, err := extract("dkg-warmup", priv.PublicKey()); err != nil {
		return DKGRow{}, err
	}
	start := time.Now()
	for i := 0; i < cfg.ExtractSamples; i++ {
		if _, err := extract(fmt.Sprintf("dkg-user-%d", i), priv.PublicKey()); err != nil {
			return DKGRow{}, err
		}
	}
	elapsed := time.Since(start)
	return DKGRow{
		Mode:         string(mode),
		Shards:       shards,
		Samples:      cfg.ExtractSamples,
		Elapsed:      elapsed,
		NsPerExtract: elapsed.Nanoseconds() / int64(cfg.ExtractSamples),
		PerSec:       float64(cfg.ExtractSamples) / elapsed.Seconds(),
	}, nil
}

// PrintDKG writes the threshold-extraction table.
func PrintDKG(w io.Writer, rows []DKGRow) {
	fmt.Fprintln(w, "DKG — user-key extraction: sealed single enclave vs threshold share-holder quorum")
	fmt.Fprintf(w, "%10s  %7s  %8s  %12s  %14s  %12s\n",
		"mode", "shards", "samples", "elapsed", "ns/extract", "extracts/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%10s  %7d  %8d  %12s  %14d  %12.1f\n",
			r.Mode, r.Shards, r.Samples, Dur(r.Elapsed), r.NsPerExtract, r.PerSec)
	}
	if len(rows) == 2 {
		fmt.Fprintf(w, "shape: threshold extraction over %d shards costs %.2f× the single sealed enclave (no enclave ever holds the master secret)\n",
			rows[1].Shards, rows[1].Ratio(rows[0]))
	}
}
