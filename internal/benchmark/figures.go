package benchmark

import (
	"crypto/rand"
	"fmt"
	"time"
)

// names generates n deterministic identities.
func names(n int, prefix string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%06d@bench.example", prefix, i)
	}
	return out
}

// Fig2Row is one group size of Fig. 2: raw-scheme group creation latency
// (a) and group metadata expansion (b), before any SGX integration.
type Fig2Row struct {
	N           int
	HEPKICreate time.Duration
	HEIBECreate time.Duration
	IBBECreate  time.Duration // classic O(n²) public-key-only encryption
	HEPKIBytes  int
	HEIBEBytes  int
	IBBEBytes   int // constant: one broadcast header
}

// RunFig2 regenerates Fig. 2 on the configured group-size grid.
func RunFig2(cfg Config) ([]Fig2Row, error) {
	maxN := cfg.GroupSizes[len(cfg.GroupSizes)-1]
	members := names(maxN, "fig2")

	hepki := NewHEPKIController()
	if err := hepki.RegisterAll(members); err != nil {
		return nil, err
	}
	heibe, err := NewHEIBEController(cfg.Params)
	if err != nil {
		return nil, err
	}
	// The raw baseline deliberately runs the reference arithmetic: Fig. 2
	// characterises the classic scheme the paper rejected, not the
	// limb-optimised path IBBE-SGX runs on (that path is what Figs. 6–10
	// measure). See NewRawIBBEReference.
	raw, err := NewRawIBBEReference(cfg.Params, maxN)
	if err != nil {
		return nil, err
	}

	rows := make([]Fig2Row, 0, len(cfg.GroupSizes))
	for _, n := range cfg.GroupSizes {
		row := Fig2Row{N: n}
		group := members[:n]

		gname := fmt.Sprintf("fig2-pki-%d", n)
		row.HEPKICreate, err = Sample(1, func() error { return hepki.CreateGroup(gname, group) })
		if err != nil {
			return nil, err
		}
		row.HEPKIBytes, err = hepki.MetadataSize(gname)
		if err != nil {
			return nil, err
		}

		gname = fmt.Sprintf("fig2-ibe-%d", n)
		row.HEIBECreate, err = Sample(1, func() error { return heibe.CreateGroup(gname, group) })
		if err != nil {
			return nil, err
		}
		row.HEIBEBytes, err = heibe.MetadataSize(gname)
		if err != nil {
			return nil, err
		}

		row.IBBECreate, err = Sample(1, func() error {
			_, _, err := raw.Scheme.EncryptClassic(raw.PK, group, rand.Reader)
			return err
		})
		if err != nil {
			return nil, err
		}
		row.IBBEBytes = raw.Scheme.HeaderLen() // constant regardless of n
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6Row is one partition size of Fig. 6: system-setup latency (a) and
// user-key extraction throughput (b).
type Fig6Row struct {
	M                int
	SetupLatency     time.Duration
	ExtractOpsPerSec float64
}

// RunFig6 regenerates Fig. 6 on the configured partition-size grid. The
// bootstrap operations are timed on the raw scheme (the computation the
// enclave runs inside EcallSetup / Extract, without the provisioning wrap).
func RunFig6(cfg Config) ([]Fig6Row, error) {
	rows := make([]Fig6Row, 0, len(cfg.PartitionSizes))
	for _, m := range cfg.PartitionSizes {
		row := Fig6Row{M: m}

		var raw *RawIBBE
		lat, err := Sample(1, func() error {
			r, err := NewRawIBBE(cfg.Params, m)
			raw = r
			return err
		})
		if err != nil {
			return nil, err
		}
		row.SetupLatency = lat

		ids := names(cfg.ExtractSamples, fmt.Sprintf("fig6-%d", m))
		start := time.Now()
		for _, id := range ids {
			if _, err := raw.Scheme.Extract(raw.MSK, id); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		row.ExtractOpsPerSec = float64(len(ids)) / elapsed.Seconds()
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7aRow is one group size of Fig. 7a: create, remove and footprint for
// IBBE-SGX (fixed capacity) against HE.
type Fig7aRow struct {
	N          int
	IBBECreate time.Duration
	HECreate   time.Duration
	IBBERemove time.Duration
	HERemove   time.Duration
	IBBEBytes  int
	HEBytes    int
}

// RunFig7a regenerates Fig. 7a.
func RunFig7a(cfg Config) ([]Fig7aRow, error) {
	maxN := cfg.GroupSizes[len(cfg.GroupSizes)-1]
	members := names(maxN, "fig7a")
	hepki := NewHEPKIController()
	if err := hepki.RegisterAll(members); err != nil {
		return nil, err
	}

	rows := make([]Fig7aRow, 0, len(cfg.GroupSizes))
	for _, n := range cfg.GroupSizes {
		row := Fig7aRow{N: n}
		group := members[:n]
		capacity := cfg.Capacity
		if capacity > n {
			capacity = n
		}
		ibbeCtl, err := NewIBBEController(cfg.Params, capacity, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// Repartitioning is an orthogonal effect for this isolated figure.
		ibbeCtl.Mgr.DisableRepartition = true

		gname := fmt.Sprintf("g%d", n)
		row.IBBECreate, err = Sample(1, func() error { return ibbeCtl.CreateGroup(gname, group) })
		if err != nil {
			return nil, err
		}
		row.IBBERemove, err = Sample(1, func() error { return ibbeCtl.RemoveUser(gname, group[n/2]) })
		if err != nil {
			return nil, err
		}
		row.IBBEBytes, err = ibbeCtl.MetadataSize(gname)
		if err != nil {
			return nil, err
		}

		row.HECreate, err = Sample(1, func() error { return hepki.CreateGroup(gname, group) })
		if err != nil {
			return nil, err
		}
		row.HERemove, err = Sample(1, func() error { return hepki.RemoveUser(gname, group[n/4]) })
		if err != nil {
			return nil, err
		}
		row.HEBytes, err = hepki.MetadataSize(gname)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7bRow is one (group size, partition size) cell of Fig. 7b.
type Fig7bRow struct {
	N, M   int
	Create time.Duration
	Remove time.Duration
	Bytes  int
}

// RunFig7b regenerates Fig. 7b: IBBE-SGX create/remove/footprint across
// partition sizes for the largest configured groups.
func RunFig7b(cfg Config) ([]Fig7bRow, error) {
	// The paper uses the top group sizes (100k, 500k, 1M); mirror with the
	// top half of the configured grid.
	sizes := cfg.GroupSizes[len(cfg.GroupSizes)/2:]
	maxN := sizes[len(sizes)-1]
	members := names(maxN, "fig7b")

	rows := make([]Fig7bRow, 0, len(sizes)*len(cfg.PartitionSizes))
	for _, n := range sizes {
		for _, m := range cfg.PartitionSizes {
			capacity := m
			if capacity > n {
				capacity = n
			}
			ctl, err := NewIBBEController(cfg.Params, capacity, cfg.Seed)
			if err != nil {
				return nil, err
			}
			ctl.Mgr.DisableRepartition = true
			row := Fig7bRow{N: n, M: m}
			group := members[:n]
			gname := fmt.Sprintf("g%d-%d", n, m)
			row.Create, err = Sample(1, func() error { return ctl.CreateGroup(gname, group) })
			if err != nil {
				return nil, err
			}
			row.Remove, err = Sample(1, func() error { return ctl.RemoveUser(gname, group[n/2]) })
			if err != nil {
				return nil, err
			}
			row.Bytes, err = ctl.MetadataSize(gname)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig8aResult holds the add-latency distributions of Fig. 8a.
type Fig8aResult struct {
	IBBE *CDF
	HE   *CDF
	// NewPartitionAdds counts IBBE adds that had to open a partition (the
	// slow mode of the bimodal CDF).
	NewPartitionAdds int
}

// RunFig8a regenerates Fig. 8a: the CDF of add-user latency. The group
// starts with partitions nearly full so the add stream exercises both arms
// of Algorithm 2.
func RunFig8a(cfg Config) (*Fig8aResult, error) {
	capacity := cfg.Capacity
	n := capacity * 4
	members := names(n+cfg.AddSamples, "fig8a")
	initial := members[:n]

	ctl, err := NewIBBEController(cfg.Params, capacity, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := ctl.CreateGroup("g", initial); err != nil {
		return nil, err
	}
	hepki := NewHEPKIController()
	if err := hepki.RegisterAll(members); err != nil {
		return nil, err
	}
	if err := hepki.CreateGroup("g", initial); err != nil {
		return nil, err
	}

	var (
		ibbeLat []time.Duration
		heLat   []time.Duration
	)
	newParts := 0
	for i := 0; i < cfg.AddSamples; i++ {
		user := members[n+i]
		before, err := ctl.Mgr.PartitionCount("g")
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := ctl.AddUser("g", user); err != nil {
			return nil, err
		}
		ibbeLat = append(ibbeLat, time.Since(start))
		after, err := ctl.Mgr.PartitionCount("g")
		if err != nil {
			return nil, err
		}
		if after > before {
			newParts++
		}

		start = time.Now()
		if err := hepki.AddUser("g", user); err != nil {
			return nil, err
		}
		heLat = append(heLat, time.Since(start))
	}
	return &Fig8aResult{IBBE: NewCDF(ibbeLat), HE: NewCDF(heLat), NewPartitionAdds: newParts}, nil
}

// Fig8bRow is one partition size of Fig. 8b: client decryption latency.
type Fig8bRow struct {
	M           int
	IBBEDecrypt time.Duration
	HEDecrypt   time.Duration
}

// RunFig8b regenerates Fig. 8b: IBBE-SGX decryption is quadratic in the
// partition size while HE decryption is constant.
func RunFig8b(cfg Config) ([]Fig8bRow, error) {
	hepki := NewHEPKIController()
	rows := make([]Fig8bRow, 0, len(cfg.PartitionSizes))
	for _, m := range cfg.PartitionSizes {
		members := names(m, fmt.Sprintf("fig8b-%d", m))
		if err := hepki.RegisterAll(members); err != nil {
			return nil, err
		}
		ctl, err := NewIBBEController(cfg.Params, m, cfg.Seed)
		if err != nil {
			return nil, err
		}
		gname := fmt.Sprintf("g%d", m)
		if err := ctl.CreateGroup(gname, members); err != nil {
			return nil, err
		}
		if err := hepki.CreateGroup(gname, members); err != nil {
			return nil, err
		}
		row := Fig8bRow{M: m}
		row.IBBEDecrypt, err = ctl.SampleDecrypt(gname, members[m/2])
		if err != nil {
			return nil, err
		}
		row.HEDecrypt, err = hepki.SampleDecrypt(gname, members[m/2])
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
