package benchmark

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/cluster"
	"github.com/ibbesgx/ibbesgx/internal/storage"
	"github.com/ibbesgx/ibbesgx/internal/trace"
)

// ClusterRow is one shard count of the cluster-throughput figure: a fixed
// mixed membership workload over many groups, replayed through the cluster
// shards (each shard applies its groups' operations sequentially, modelling
// the paper's serial administrator), with wall-clock throughput across the
// whole cluster. Scaling the shard count multiplies the number of serial
// admin pipelines; throughput should grow until shards exceed cores.
type ClusterRow struct {
	Shards int `json:"shards"`
	Groups int `json:"groups"`
	Users  int `json:"users"`
	Ops    int `json:"ops"`

	Elapsed   time.Duration `json:"elapsed_ns"`
	NsPerOp   int64         `json:"ns_per_op"`
	OpsPerSec float64       `json:"ops_per_sec"`
	// Puts counts partition-record writes the cloud store absorbed during
	// the timed region (each is one re-encrypted partition).
	Puts int64 `json:"puts"`
}

// Speedup returns this row's throughput relative to base.
func (r ClusterRow) Speedup(base ClusterRow) float64 {
	if base.OpsPerSec == 0 {
		return 0
	}
	return r.OpsPerSec / base.OpsPerSec
}

// clusterShardCounts is the scaling sweep (the ISSUE's 1→4).
var clusterShardCounts = []int{1, 2, 3, 4}

// RunCluster measures admin-op throughput over 1→4 shards on a mixed
// trace workload: groups × a Synthetic trace each (30 % revocations), with
// per-shard parallelism pinned to 1 so the figure isolates horizontal
// scale-out from the per-operation fan-out RunParallel measures. The group
// count (12) divides every shard count in the sweep and group names are
// mined so the ring spreads them exactly evenly — the figure measures
// scaling, not placement luck.
func RunCluster(cfg Config) ([]ClusterRow, error) {
	const groups = 12
	opsPerGroup := cfg.SyntheticOps / 25
	if opsPerGroup < 8 {
		opsPerGroup = 8
	}
	initial := cfg.Capacity * 2

	// One trace per group, identical across shard counts so the rows are
	// comparable.
	traces := make([]*trace.Trace, groups)
	for i := range traces {
		tr, err := trace.Synthetic(trace.SyntheticConfig{
			Ops:            opsPerGroup,
			RevocationRate: 0.3,
			InitialSize:    initial,
			Seed:           cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		traces[i] = tr
	}

	rows := make([]ClusterRow, 0, len(clusterShardCounts))
	for _, shards := range clusterShardCounts {
		row, err := runClusterOnce(cfg, shards, traces)
		if err != nil {
			return nil, fmt.Errorf("cluster with %d shards: %w", shards, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// benchPutLatency is the injected cloud mutation round-trip. The paper's
// evaluation argues cloud response time dominates the end-to-end cost; with
// it in place the figure shows what sharding actually buys a deployment:
// N admin pipelines overlap their cloud waits (and, on multicore, their
// enclave compute).
const benchPutLatency = 5 * time.Millisecond

// runClusterOnce replays the workload against one cluster size.
func runClusterOnce(cfg Config, shards int, traces []*trace.Trace) (ClusterRow, error) {
	mem := storage.NewMemStore(storage.Latency{Put: benchPutLatency})
	c, err := cluster.New(cluster.Options{
		Shards:   shards,
		Capacity: cfg.Capacity,
		Params:   cfg.Params,
		Store:    mem,
		LeaseTTL: 10 * time.Minute, // no expiry churn inside a bench run
		Seed:     cfg.Seed,
		Workers:  1, // serial admin per shard: isolate horizontal scaling
	})
	if err != nil {
		return ClusterRow{}, err
	}
	// No renewal loops: a run is far shorter than the TTL.

	// Mine group names until the ring spreads them exactly evenly (the
	// group count divides the shard count), so every pipeline carries the
	// same load and the row measures scaling rather than placement luck.
	quota := len(traces) / shards
	names := make([]string, 0, len(traces))
	perShard := make(map[string]int, shards)
	for cand := 0; len(names) < len(traces); cand++ {
		n := fmt.Sprintf("bench-%d-g%03d", shards, cand)
		if owner := c.Ring().Owner(n); perShard[owner] < quota {
			perShard[owner]++
			names = append(names, n)
		}
	}
	groupName := func(i int) string { return names[i] }

	// Partition the groups by ring owner; one driver goroutine per shard
	// replays its groups sequentially — N shards = N serial admin pipelines.
	byShard := make(map[string][]int)
	for i := range traces {
		owner := c.Ring().Owner(groupName(i))
		byShard[owner] = append(byShard[owner], i)
	}

	// Setup (untimed): create every group with its initial member set.
	row := ClusterRow{Shards: shards, Groups: len(traces)}
	for i, tr := range traces {
		if err := clusterOp(c, groupName(i), "create", map[string]any{
			"group": groupName(i), "members": tr.Initial,
		}); err != nil {
			return ClusterRow{}, err
		}
		row.Users += len(tr.Initial)
	}

	before := mem.Stats()
	start := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		totalOps int
	)
	for shardID, idxs := range byShard {
		wg.Add(1)
		go func(shardID string, idxs []int) {
			defer wg.Done()
			ops := 0
			for _, i := range idxs {
				g := groupName(i)
				for _, op := range traces[i].Ops {
					var body map[string]any
					route := "add"
					if op.Kind == trace.OpRemove {
						route = "remove"
					}
					body = map[string]any{"group": g, "user": op.User}
					if err := clusterOp(c, g, route, body); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("%s %s on %s: %w", route, op.User, g, err)
						}
						mu.Unlock()
						return
					}
					ops++
				}
			}
			mu.Lock()
			totalOps += ops
			mu.Unlock()
		}(shardID, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return ClusterRow{}, firstErr
	}
	row.Elapsed = time.Since(start)
	row.Ops = totalOps
	if totalOps > 0 {
		row.NsPerOp = row.Elapsed.Nanoseconds() / int64(totalOps)
		row.OpsPerSec = float64(totalOps) / row.Elapsed.Seconds()
	}
	row.Puts = mem.Stats().Puts - before.Puts
	return row, nil
}

// clusterOp drives one admin operation through the owning shard's HTTP
// handler (ownership gate included), without network overhead.
func clusterOp(c *cluster.Cluster, group, route string, body map[string]any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	shard := c.Shard(c.Ring().Owner(group))
	req := httptest.NewRequest(http.MethodPost, "/admin/"+route, strings.NewReader(string(blob)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	shard.ServeHTTP(rec, req)
	if rec.Code >= 300 {
		return fmt.Errorf("benchmark: shard answered %d: %s", rec.Code, strings.TrimSpace(rec.Body.String()))
	}
	return nil
}

// PrintCluster writes the cluster-throughput table.
func PrintCluster(w io.Writer, rows []ClusterRow) {
	fmt.Fprintln(w, "Cluster — sharded multi-admin throughput, mixed add/remove workload (serial admin per shard)")
	fmt.Fprintf(w, "%7s  %7s  %7s  %7s  %12s  %12s  %10s  %8s\n",
		"shards", "groups", "users", "ops", "elapsed", "ns/op", "ops/s", "puts")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d  %7d  %7d  %7d  %12s  %12d  %10.1f  %8d\n",
			r.Shards, r.Groups, r.Users, r.Ops, Dur(r.Elapsed), r.NsPerOp, r.OpsPerSec, r.Puts)
	}
	if len(rows) > 1 {
		last := rows[len(rows)-1]
		fmt.Fprintf(w, "shape: %d shards reach %.2f× the single-shard admin throughput (ideal %.0f×, bounded by cores)\n",
			last.Shards, last.Speedup(rows[0]), float64(last.Shards))
	}
}

// WriteJSON emits one experiment's rows as a machine-readable report — the
// perf trajectory artifact CI archives.
func WriteJSON(path, experiment, scale string, rows any) error {
	report := struct {
		Experiment string `json:"experiment"`
		Scale      string `json:"scale"`
		Rows       any    `json:"rows"`
	}{Experiment: experiment, Scale: scale, Rows: rows}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
