package benchmark

import (
	"context"
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/client"
	"github.com/ibbesgx/ibbesgx/internal/cluster"
	"github.com/ibbesgx/ibbesgx/internal/storage"
)

// benchGetLatency is the injected cloud-store read round trip. The paper's
// decrypt measurements (Fig. 8b) observe that cloud round trips dominate
// the client read path — this is the cost the record cache exists to
// amortise, so the read-path figure must model it.
const benchGetLatency = 2 * time.Millisecond

// ReadPathRow is one arm of the gateway-less read-path figure: 64 readers
// with Zipf-distributed group popularity refresh group keys as fast as
// they can against a 2-shard cluster.
//
//   - baseline: every Refresh goes to the cloud store and re-derives the
//     key — the router-era client read path.
//   - cached: the readers share one version-keyed record cache; the timed
//     window runs fully warm, so every read must be a pure memory hit
//     (StoreGets over the window is the acceptance criterion: zero).
//   - rebalance: the cached readers keep reading while the cluster grows
//     2→4 live and a gateway-less admin client rotates every group key
//     direct-to-shard; invalidation is membership- and poll-driven, and
//     no read may fail.
type ReadPathRow struct {
	Mode    string `json:"mode"` // baseline | cached | rebalance
	Shards  int    `json:"shards"`
	Readers int    `json:"readers"`
	Groups  int    `json:"groups"`
	Reads   int64  `json:"reads"`

	Elapsed     time.Duration `json:"elapsed_ns"`
	ReadsPerSec float64       `json:"reads_per_sec"`

	// StoreGets counts the object GETs the timed window cost the cloud
	// store. Cached mode must report 0: a version-current read performs no
	// store round trips.
	StoreGets int64 `json:"store_gets"`

	// FailedReads counts Refresh calls that returned an error. Must be 0
	// in every arm — including mid-rebalance.
	FailedReads int64 `json:"failed_reads"`

	// Rebalance-only: the concurrent admin work and the invalidation it
	// caused.
	RekeyOps   int64 `json:"rekey_ops,omitempty"`
	DirectOps  int64 `json:"direct_ops,omitempty"`
	ProxiedOps int64 `json:"proxied_ops"`
	Evictions  int64 `json:"evictions,omitempty"`
}

// RunReadPath measures the gateway-less read path: baseline (uncached)
// refreshes vs cache-hit refreshes vs cache-hit refreshes during a live
// 2→4 grow with concurrent direct-routed rekeys.
func RunReadPath(cfg Config) ([]ReadPathRow, error) {
	const (
		groups  = 8
		readers = 64 // the acceptance point: 64 concurrent readers
		zipfS   = 1.2

		baselineWindow = 500 * time.Millisecond
		cachedWindow   = 300 * time.Millisecond
		settleWindow   = 200 * time.Millisecond
	)

	mem := storage.NewMemStore(storage.Latency{Put: benchPutLatency, Get: benchGetLatency})
	c, err := cluster.New(cluster.Options{
		Shards:   2,
		Capacity: cfg.Capacity,
		Params:   cfg.Params,
		Store:    mem,
		LeaseTTL: 10 * time.Minute, // no expiry churn inside a bench run
		Seed:     cfg.Seed,
		Workers:  1,
	})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Serve every shard over real HTTP and publish the URLs into the
	// membership record, exactly as cmd/ibbe-cluster does — the rebalance
	// arm's gateway-less admin client resolves its routes from that record.
	var tmu sync.Mutex
	targets := make(map[string]string)
	var servers []*httptest.Server
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	serve := func(s *cluster.Shard) {
		srv := httptest.NewServer(s)
		tmu.Lock()
		targets[s.ID] = srv.URL
		servers = append(servers, srv)
		tmu.Unlock()
	}
	c.Targets = func() map[string]string {
		tmu.Lock()
		defer tmu.Unlock()
		out := make(map[string]string, len(targets))
		for id, u := range targets {
			out[id] = u
		}
		return out
	}
	for _, s := range c.Shards() {
		serve(s)
	}
	if err := c.PublishTargets(ctx); err != nil {
		return nil, err
	}

	// Every reader is a member of every group, so Zipf-picked reads always
	// decrypt and a rekey never evicts a reader.
	users := make([]string, readers)
	for r := range users {
		users[r] = fmt.Sprintf("readpath-u%03d@example.com", r)
	}
	groupName := func(i int) string { return fmt.Sprintf("readpath-g%03d", i) }
	for i := 0; i < groups; i++ {
		if err := rebalanceOp(c, groupName(i), "create", map[string]any{
			"group": groupName(i), "members": users,
		}); err != nil {
			return nil, err
		}
	}

	// Provision one user key per reader (shard 0's enclave — the shared
	// master secret makes any shard's records decrypt with it) and one
	// client per (reader, group).
	encl := c.Shards()[0].Encl
	pk := c.Shards()[0].Admin.Manager().PublicKey()
	clients := make([][]*client.Client, readers)
	for r := 0; r < readers; r++ {
		priv, err := ecdh.P256().GenerateKey(rand.Reader)
		if err != nil {
			return nil, err
		}
		prov, err := encl.EcallExtractUserKey(users[r], priv.PublicKey())
		if err != nil {
			return nil, err
		}
		uk, err := prov.Open(encl.Scheme(), encl.IdentityPublicKey(), priv)
		if err != nil {
			return nil, err
		}
		clients[r] = make([]*client.Client, groups)
		for g := 0; g < groups; g++ {
			cl, err := client.New(encl.Scheme(), pk, users[r], uk, mem, groupName(g))
			if err != nil {
				return nil, err
			}
			clients[r][g] = cl
		}
	}

	// warmAll brings every client to a derived key (partition located,
	// record fetched) so timed windows measure steady-state reads only.
	warmAll := func() error {
		var wg sync.WaitGroup
		errs := make(chan error, readers)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for g := 0; g < groups; g++ {
					if _, err := clients[r][g].Refresh(ctx); err != nil {
						errs <- fmt.Errorf("warming reader %d group %d: %w", r, g, err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
		close(errs)
		return <-errs
	}

	// runWindow streams Zipf-picked refreshes from every reader until
	// drive returns, then reports reads, failures and elapsed time.
	runWindow := func(salt int64, drive func()) (reads, failed int64, elapsed time.Duration) {
		var (
			wg      sync.WaitGroup
			stop    atomic.Bool
			nReads  atomic.Int64
			nFailed atomic.Int64
		)
		start := time.Now()
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				// Per-reader deterministic Zipf over the groups: a few hot
				// groups absorb most reads, the tail stays warm but rare.
				src := mrand.New(mrand.NewSource(cfg.Seed + salt*1000 + int64(r)))
				zipf := mrand.NewZipf(src, zipfS, 1, groups-1)
				for !stop.Load() {
					g := int(zipf.Uint64())
					if _, err := clients[r][g].Refresh(ctx); err != nil {
						nFailed.Add(1)
					} else {
						nReads.Add(1)
					}
				}
			}(r)
		}
		drive()
		stop.Store(true)
		wg.Wait()
		return nReads.Load(), nFailed.Load(), time.Since(start)
	}

	row := func(mode string, shards int, reads, failed, gets int64, elapsed time.Duration) ReadPathRow {
		r := ReadPathRow{
			Mode: mode, Shards: shards, Readers: readers, Groups: groups,
			Reads: reads, Elapsed: elapsed, StoreGets: gets, FailedReads: failed,
		}
		if reads > 0 && elapsed > 0 {
			r.ReadsPerSec = float64(reads) / elapsed.Seconds()
		}
		return r
	}
	rows := make([]ReadPathRow, 0, 3)

	// Arm 1 — baseline: no cache; every Refresh pays the store round trip
	// and the IBBE decrypt, as the router-era client did.
	if err := warmAll(); err != nil {
		return nil, err
	}
	getsBefore := mem.Stats().Gets
	reads, failed, elapsed := runWindow(1, func() { time.Sleep(baselineWindow) })
	rows = append(rows, row("baseline", 2, reads, failed, mem.Stats().Gets-getsBefore, elapsed))

	// Arm 2 — cached: all readers share one record cache. After a warm
	// pass the timed window is version-current throughout, so every read
	// must be served from memory: zero store GETs.
	cache := client.NewRecordCache(mem)
	for r := 0; r < readers; r++ {
		for g := 0; g < groups; g++ {
			clients[r][g].SetCache(cache)
		}
	}
	if err := warmAll(); err != nil {
		return nil, err
	}
	getsBefore = mem.Stats().Gets
	reads, failed, elapsed = runWindow(2, func() { time.Sleep(cachedWindow) })
	rows = append(rows, row("cached", 2, reads, failed, mem.Stats().Gets-getsBefore, elapsed))

	// Arm 3 — rebalance: the cached readers keep streaming while the
	// cluster grows 2→4 live and a gateway-less admin client rotates every
	// group key direct-to-shard. Invalidation comes from the existing
	// machinery only: per-group long-poll observations and the membership
	// epoch bumps the admin client's Watch adopts.
	pollCtx, cancelPolls := context.WithCancel(ctx)
	defer cancelPolls()
	for i := 0; i < groups; i++ {
		g := groupName(i)
		since, err := mem.Version(ctx, g)
		if err != nil {
			return nil, err
		}
		go func(g string, since uint64) {
			for {
				v, err := mem.Poll(pollCtx, g, since)
				if err != nil {
					return
				}
				since = v
				cache.ObserveVersion(g, v)
			}
		}(g, since)
	}
	cc, err := client.NewClusterClient(ctx, mem, "")
	if err != nil {
		return nil, err
	}
	cc.Cache = cache
	go cc.Watch(pollCtx)

	var driveErr error
	var rekeys int64
	getsBefore = mem.Stats().Gets
	evBefore := cache.Stats().Evictions
	reads, failed, elapsed = runWindow(3, func() {
		for j := 0; j < 2; j++ {
			s, err := c.AddShard()
			if err != nil {
				driveErr = err
				return
			}
			serve(s)
			if _, err := c.Admit(ctx, s.ID); err != nil {
				driveErr = err
				return
			}
		}
		for i := 0; i < groups; i++ {
			if err := cc.RekeyGroup(ctx, groupName(i)); err != nil {
				driveErr = fmt.Errorf("rekey %s mid-grow: %w", groupName(i), err)
				return
			}
			rekeys++
		}
		// Let the pollers observe the last rekeys and the readers refetch,
		// so the row includes the post-invalidation recovery.
		time.Sleep(settleWindow)
	})
	if driveErr != nil {
		return nil, driveErr
	}
	reb := row("rebalance", 4, reads, failed, mem.Stats().Gets-getsBefore, elapsed)
	st := cc.Stats()
	reb.RekeyOps = rekeys
	reb.DirectOps = st.Direct
	reb.ProxiedOps = st.Proxied
	reb.Evictions = cache.Stats().Evictions - evBefore
	rows = append(rows, reb)
	return rows, nil
}

// PrintReadPath writes the read-path table.
func PrintReadPath(w io.Writer, rows []ReadPathRow) {
	fmt.Fprintln(w, "Read path — 64 Zipf readers refreshing group keys (baseline vs shared record cache vs live 2→4 grow)")
	fmt.Fprintf(w, "%10s  %7s  %8s  %7s  %9s  %12s  %12s  %10s  %7s\n",
		"mode", "shards", "readers", "groups", "reads", "elapsed", "reads/s", "store-gets", "failed")
	for _, r := range rows {
		fmt.Fprintf(w, "%10s  %7d  %8d  %7d  %9d  %12s  %12.0f  %10d  %7d\n",
			r.Mode, r.Shards, r.Readers, r.Groups, r.Reads, Dur(r.Elapsed), r.ReadsPerSec, r.StoreGets, r.FailedReads)
	}
	if len(rows) == 3 {
		base, cached, reb := rows[0], rows[1], rows[2]
		speedup := 0.0
		if base.ReadsPerSec > 0 {
			speedup = cached.ReadsPerSec / base.ReadsPerSec
		}
		fmt.Fprintf(w, "shape: cache-hit reads run %.1fx the uncached baseline (%.0f vs %.0f reads/s) with %d store GETs in the warm window; grow 2→4 live: %d reads, %d failed, %d rekeys all direct (%d direct / %d proxied), %d cache evictions\n",
			speedup, cached.ReadsPerSec, base.ReadsPerSec, cached.StoreGets,
			reb.Reads, reb.FailedReads, reb.RekeyOps, reb.DirectOps, reb.ProxiedOps, reb.Evictions)
	}
}
