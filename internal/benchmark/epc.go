package benchmark

import (
	"crypto/rand"
	"fmt"
	"io"

	"github.com/ibbesgx/ibbesgx/internal/enclave"
	"github.com/ibbesgx/ibbesgx/internal/hybrid"
)

// EPCRow is one group size of the EPC-pressure experiment: the peak
// enclave-resident working set for a create-group operation under HE-inside-
// SGX versus IBBE-SGX.
type EPCRow struct {
	N             int
	HEPeakBytes   int64
	IBBEPeakBytes int64
}

// RunEPCExperiment quantifies the §III-B hypothesis that motivated the whole
// design: putting Hybrid Encryption inside the enclave inflates the enclave
// working set linearly with the group (risking EPC paging at large groups,
// 128 MB limit), while IBBE-SGX's per-partition working set stays constant.
// It reports the peak simulated resident set for one group creation.
func RunEPCExperiment(cfg Config) ([]EPCRow, error) {
	rows := make([]EPCRow, 0, len(cfg.GroupSizes))
	for _, n := range cfg.GroupSizes {
		members := names(n, "epc")

		// HE inside the enclave.
		hePlatform, err := enclave.NewPlatform("epc-he", rand.Reader)
		if err != nil {
			return nil, err
		}
		pki := hybrid.NewPKI()
		for _, m := range members {
			if err := pki.Register(m, rand.Reader); err != nil {
				return nil, err
			}
		}
		he := enclave.NewHEEnclave(hePlatform, pki)
		if _, err := he.EcallCreateGroup("g", members); err != nil {
			return nil, err
		}
		heStats := hePlatform.EPC()

		// IBBE-SGX: same group, partitioned.
		capacity := cfg.Capacity
		if capacity > n {
			capacity = n
		}
		ctl, err := NewIBBEController(cfg.Params, capacity, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if err := ctl.CreateGroup("g", members); err != nil {
			return nil, err
		}
		ibbeStats := ctl.Encl.Enclave().Platform().EPC()

		rows = append(rows, EPCRow{
			N:             n,
			HEPeakBytes:   heStats.PeakResident,
			IBBEPeakBytes: ibbeStats.PeakResident,
		})
	}
	return rows, nil
}

// PrintEPC writes the EPC-pressure table.
func PrintEPC(w io.Writer, rows []EPCRow) {
	fmt.Fprintln(w, "EPC pressure — peak enclave working set for one group creation (§III-B)")
	fmt.Fprintf(w, "%10s  %16s  %16s\n", "group", "HE-in-SGX", "IBBE-SGX")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d  %16s  %16s\n", r.N, Bytes(int(r.HEPeakBytes)), Bytes(int(r.IBBEPeakBytes)))
	}
	fmt.Fprintf(w, "shape: HE working set linear in the group (exceeds the %s EPC near 1M users); IBBE-SGX stays bounded by the partition\n",
		Bytes(enclave.DefaultEPCBytes))
}
