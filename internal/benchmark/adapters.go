// Package benchmark provides the measurement harness that regenerates the
// paper's tables and figures: trace.Controller adapters for IBBE-SGX and
// the two Hybrid Encryption baselines, timing and statistics helpers, and
// plain-text printers that emit the same rows/series the paper plots.
package benchmark

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/core"
	"github.com/ibbesgx/ibbesgx/internal/enclave"
	"github.com/ibbesgx/ibbesgx/internal/hybrid"
	"github.com/ibbesgx/ibbesgx/internal/ibbe"
	"github.com/ibbesgx/ibbesgx/internal/kdf"
	"github.com/ibbesgx/ibbesgx/internal/pairing"
	"github.com/ibbesgx/ibbesgx/internal/trace"
)

// IBBEController adapts the IBBE-SGX manager to the replay engine. User
// keys for decryption sampling are provisioned through the real handshake
// but outside the timed regions (a user provisions once, not per read).
type IBBEController struct {
	Mgr  *core.Manager
	Encl *enclave.IBBEEnclave

	mu      sync.Mutex
	clients map[string]*core.Client
}

var (
	_ trace.Controller     = (*IBBEController)(nil)
	_ trace.DecryptSampler = (*IBBEController)(nil)
)

// NewIBBEController builds a fresh enclave + manager pair at the given
// partition capacity on the given pairing parameters.
func NewIBBEController(params *pairing.Params, capacity int, seed int64) (*IBBEController, error) {
	platform, err := enclave.NewPlatform("bench-platform", rand.Reader)
	if err != nil {
		return nil, err
	}
	ie, err := enclave.NewIBBEEnclave(platform, params)
	if err != nil {
		return nil, err
	}
	if _, _, err := ie.EcallSetup(capacity); err != nil {
		return nil, err
	}
	mgr, err := core.NewManager(ie, capacity, seed)
	if err != nil {
		return nil, err
	}
	return &IBBEController{Mgr: mgr, Encl: ie, clients: make(map[string]*core.Client)}, nil
}

// CreateGroup implements trace.Controller.
func (c *IBBEController) CreateGroup(group string, members []string) error {
	if len(members) == 0 {
		// The kernel trace starts from an empty group; IBBE-SGX groups are
		// created on first add.
		return nil
	}
	_, err := c.Mgr.CreateGroup(group, members)
	return err
}

// AddUser implements trace.Controller, creating the group lazily when the
// trace starts empty.
func (c *IBBEController) AddUser(group, user string) error {
	_, err := c.Mgr.AddUser(group, user)
	if err != nil && isNoSuchGroup(err) {
		_, err = c.Mgr.CreateGroup(group, []string{user})
	}
	return err
}

// RemoveUser implements trace.Controller.
func (c *IBBEController) RemoveUser(group, user string) error {
	_, err := c.Mgr.RemoveUser(group, user)
	return err
}

// MetadataSize implements trace.Controller.
func (c *IBBEController) MetadataSize(group string) (int, error) {
	return c.Mgr.MetadataSize(group)
}

// SampleDecrypt implements trace.DecryptSampler: it times exactly the
// client-side derivation (IBBE decrypt + unwrap), with record fetch and key
// provisioning excluded, mirroring Fig. 8b/9's isolated decrypt metric.
func (c *IBBEController) SampleDecrypt(group, user string) (time.Duration, error) {
	cl, err := c.clientFor(user)
	if err != nil {
		return 0, err
	}
	// Single-page fetch: the index maps the user to its partition, so the
	// sample never materialises the whole group's records.
	rec, err := c.Mgr.Record(group, user)
	if err != nil {
		return 0, fmt.Errorf("benchmark: %s has no partition in %s: %w", user, group, err)
	}
	start := time.Now()
	if _, err := cl.DecryptRecord(group, rec); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// clientFor provisions (and caches) a decryption client for user.
func (c *IBBEController) clientFor(user string) (*core.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.clients[user]; ok {
		return cl, nil
	}
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	prov, err := c.Encl.EcallExtractUserKey(user, priv.PublicKey())
	if err != nil {
		return nil, err
	}
	uk, err := prov.Open(c.Encl.Scheme(), c.Encl.IdentityPublicKey(), priv)
	if err != nil {
		return nil, err
	}
	cl, err := core.NewClient(c.Encl.Scheme(), c.Mgr.PublicKey(), user, uk)
	if err != nil {
		return nil, err
	}
	c.clients[user] = cl
	return cl, nil
}

func isNoSuchGroup(err error) bool {
	return errors.Is(err, core.ErrNoSuchGroup)
}

// HEPKIController adapts the HE-PKI baseline. Key-pair registration — a
// PKI concern, not a membership operation — happens outside the timed
// calls via RegisterAll.
type HEPKIController struct {
	HE *hybrid.HEPKI

	mu     sync.Mutex
	groups map[string]*heGroup
}

type heGroup struct {
	gk [kdf.KeySize]byte
	md *hybrid.Metadata
}

var (
	_ trace.Controller     = (*HEPKIController)(nil)
	_ trace.DecryptSampler = (*HEPKIController)(nil)
)

// NewHEPKIController builds the baseline with an empty PKI.
func NewHEPKIController() *HEPKIController {
	return &HEPKIController{HE: hybrid.NewHEPKI(hybrid.NewPKI()), groups: make(map[string]*heGroup)}
}

// RegisterAll provisions PKI key pairs for every user a trace will touch.
func (c *HEPKIController) RegisterAll(users []string) error {
	for _, u := range users {
		if err := c.HE.PKI.Register(u, rand.Reader); err != nil {
			return err
		}
	}
	return nil
}

// CreateGroup implements trace.Controller.
func (c *HEPKIController) CreateGroup(group string, members []string) error {
	gk, md, err := c.HE.CreateGroup(members, rand.Reader)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.groups[group] = &heGroup{gk: gk, md: md}
	return nil
}

// AddUser implements trace.Controller.
func (c *HEPKIController) AddUser(group, user string) error {
	c.mu.Lock()
	g, ok := c.groups[group]
	c.mu.Unlock()
	if !ok {
		return c.CreateGroup(group, []string{user})
	}
	return c.HE.AddUser(g.md, g.gk, user, rand.Reader)
}

// RemoveUser implements trace.Controller.
func (c *HEPKIController) RemoveUser(group, user string) error {
	c.mu.Lock()
	g, ok := c.groups[group]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("benchmark: no group %s", group)
	}
	gk, err := c.HE.RemoveUser(g.md, user, rand.Reader)
	if err != nil {
		return err
	}
	g.gk = gk
	return nil
}

// MetadataSize implements trace.Controller.
func (c *HEPKIController) MetadataSize(group string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[group]
	if !ok {
		return 0, fmt.Errorf("benchmark: no group %s", group)
	}
	return g.md.Size(), nil
}

// SampleDecrypt implements trace.DecryptSampler.
func (c *HEPKIController) SampleDecrypt(group, user string) (time.Duration, error) {
	c.mu.Lock()
	g, ok := c.groups[group]
	c.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("benchmark: no group %s", group)
	}
	start := time.Now()
	if _, err := c.HE.Decrypt(g.md, user); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// HEIBEController adapts the HE-IBE baseline (per-member Boneh–Franklin
// wrapping). User-key extraction is prewarmed outside timed decrypts.
type HEIBEController struct {
	HE *hybrid.HEIBE

	mu     sync.Mutex
	groups map[string]*heGroup
}

var (
	_ trace.Controller     = (*HEIBEController)(nil)
	_ trace.DecryptSampler = (*HEIBEController)(nil)
)

// NewHEIBEController sets up a fresh IBE authority on the given parameters.
func NewHEIBEController(params *pairing.Params) (*HEIBEController, error) {
	he, err := hybrid.NewHEIBE(params, rand.Reader)
	if err != nil {
		return nil, err
	}
	return &HEIBEController{HE: he, groups: make(map[string]*heGroup)}, nil
}

// CreateGroup implements trace.Controller.
func (c *HEIBEController) CreateGroup(group string, members []string) error {
	gk, md, err := c.HE.CreateGroup(members, rand.Reader)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.groups[group] = &heGroup{gk: gk, md: md}
	return nil
}

// AddUser implements trace.Controller.
func (c *HEIBEController) AddUser(group, user string) error {
	c.mu.Lock()
	g, ok := c.groups[group]
	c.mu.Unlock()
	if !ok {
		return c.CreateGroup(group, []string{user})
	}
	return c.HE.AddUser(g.md, g.gk, user, rand.Reader)
}

// RemoveUser implements trace.Controller.
func (c *HEIBEController) RemoveUser(group, user string) error {
	c.mu.Lock()
	g, ok := c.groups[group]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("benchmark: no group %s", group)
	}
	gk, err := c.HE.RemoveUser(g.md, user, rand.Reader)
	if err != nil {
		return err
	}
	g.gk = gk
	return nil
}

// MetadataSize implements trace.Controller.
func (c *HEIBEController) MetadataSize(group string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[group]
	if !ok {
		return 0, fmt.Errorf("benchmark: no group %s", group)
	}
	return g.md.Size(), nil
}

// SampleDecrypt implements trace.DecryptSampler.
func (c *HEIBEController) SampleDecrypt(group, user string) (time.Duration, error) {
	c.mu.Lock()
	g, ok := c.groups[group]
	c.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("benchmark: no group %s", group)
	}
	// Prewarm the extraction cache so only the decryption is timed.
	if _, err := c.HE.UserKey(user); err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := c.HE.Decrypt(g.md, user); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// RawIBBE exposes the unpartitioned, PK-only IBBE scheme (the paper's
// Fig. 2 baseline): quadratic encryption, constant metadata.
type RawIBBE struct {
	Scheme *ibbe.Scheme
	MSK    *ibbe.MasterSecretKey
	PK     *ibbe.PublicKey
}

// NewRawIBBE sets up raw IBBE supporting groups up to maxGroup.
func NewRawIBBE(params *pairing.Params, maxGroup int) (*RawIBBE, error) {
	s := ibbe.NewScheme(params)
	msk, pk, err := s.Setup(maxGroup, rand.Reader)
	if err != nil {
		return nil, err
	}
	return &RawIBBE{Scheme: s, MSK: msk, PK: pk}, nil
}

// NewRawIBBEReference is NewRawIBBE on the reference (big.Int) arithmetic.
// Fig. 2 measures the paper's unaccelerated classic-IBBE baseline — the
// textbook implementation whose cost motivates the SGX construction — so it
// must not inherit the Montgomery fast path that the IBBE-SGX system itself
// runs on (Figs. 6–10). Everything downstream of DisableFastPath is the
// bit-for-bit-equivalent schoolbook arithmetic.
func NewRawIBBEReference(params *pairing.Params, maxGroup int) (*RawIBBE, error) {
	s := ibbe.NewScheme(params)
	s.DisableFastPath = true
	msk, pk, err := s.Setup(maxGroup, rand.Reader)
	if err != nil {
		return nil, err
	}
	return &RawIBBE{Scheme: s, MSK: msk, PK: pk}, nil
}
