package benchmark

import (
	"crypto/ecdh"
	crand "crypto/rand"
	"fmt"
	"io"
	mrand "math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/cluster"
	"github.com/ibbesgx/ibbesgx/internal/core"
	"github.com/ibbesgx/ibbesgx/internal/storage"
	"github.com/ibbesgx/ibbesgx/internal/trace"
)

// MillionUserRow is one phase of the paged-manager scenario sweep: the
// workload of trace.NewWorkload (Zipf-sized groups, flash-crowd joins, a
// mass revocation of the largest group, diurnal churn) replayed through a
// live 2-shard cluster whose managers run with a bounded resident-page
// cache. The memory columns are the tentpole claim: the largest group's
// peak page residency must stay at the configured bound — O(partition)
// memory per operation — even while the whole group is swept, and the heap
// peak stays flat instead of scaling with the total population.
type MillionUserRow struct {
	Phase string `json:"phase"`
	// Ops counts admin requests (batched joins/revocations count once per
	// request); FailedOps must be zero for the row to be acceptable.
	Ops       int `json:"ops"`
	FailedOps int `json:"failed_ops"`
	// Decrypts samples the read path after the phase: members of the
	// touched groups fetch their single partition record (no O(group)
	// listing) and derive the group key.
	Decrypts       int `json:"decrypts"`
	FailedDecrypts int `json:"failed_decrypts"`

	Elapsed   time.Duration `json:"elapsed_ns"`
	OpsPerSec float64       `json:"ops_per_sec"`

	// ResidentPagesPeak is the largest group's page-cache high-water mark
	// during the phase (reset at the phase boundary); MaxResidentLimit is
	// the configured bound it must respect.
	ResidentPagesPeak int `json:"resident_pages_peak"`
	MaxResidentLimit  int `json:"max_resident_limit"`
	// Evictions is the cluster-wide page evictions the phase caused.
	Evictions uint64 `json:"evictions_total"`
	// PeakHeapBytes is the peak Go heap in use observed during the phase
	// (sampled; the process-RSS proxy available without cgo).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// millionUserDecryptSamples is the per-phase read-path sample count.
const millionUserDecryptSamples = 16

// RunMillionUser replays the multi-group scenario suite on a live 2-shard
// cluster with paged group state and returns one row per phase. It fails —
// rather than reporting a degraded row — if the mass-revocation sweep over
// the largest group ever holds more resident pages than the configured
// bound: that is the acceptance property, not a measurement.
func RunMillionUser(cfg Config) ([]MillionUserRow, error) {
	wl, err := trace.NewWorkload(trace.WorkloadConfig{
		Users:          cfg.WLUsers,
		Groups:         cfg.WLGroups,
		FlashFrac:      0.1,
		RevocationFrac: 0.3,
		DiurnalOps:     cfg.WLDiurnalOps,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	mem := storage.NewMemStore(storage.Latency{})
	c, err := cluster.New(cluster.Options{
		Shards:           2,
		Capacity:         cfg.Capacity,
		Params:           cfg.Params,
		Store:            mem,
		LeaseTTL:         10 * time.Minute,
		Seed:             cfg.Seed,
		Workers:          4,
		MaxResidentPages: cfg.MaxResidentPages,
	})
	if err != nil {
		return nil, err
	}

	// Batch size for joins and revocations: one admin request touches at
	// most MaxResidentPages pages, so batching at capacity×bound members
	// keeps even the bulk-load phases inside the residency budget.
	chunk := cfg.Capacity * cfg.MaxResidentPages
	if chunk <= 0 {
		chunk = 4096
	}

	// Live membership model mirroring the replay (phases apply fully
	// before sampling, so the model is exact regardless of replay order).
	model := newWlModel(wl)
	samplers := newDecryptSamplers(c)
	rng := mrand.New(mrand.NewSource(cfg.Seed + 77))

	heap := newHeapWatch()
	defer heap.stop()

	rows := make([]MillionUserRow, 0, len(wl.Phases)+1)
	largest := wl.Largest()

	// runPhase replays one phase, then folds its ops into the membership
	// model BEFORE sampling — revoked members must not be sampled.
	runPhase := func(name string, phaseOps []trace.WorkloadOp, replay func() (ops, failed int, err error)) error {
		// Phase boundary: restart the largest group's residency
		// measurement and the heap peak, snapshot the eviction counters.
		if mgr := ownerManager(c, largest); mgr != nil {
			if err := mgr.ResetGroupHighWater(largest); err != nil {
				return err
			}
		}
		evBefore := clusterEvictions(c)
		heap.reset()
		start := time.Now()
		ops, failed, err := replay()
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("%s phase: %w", name, err)
		}
		model.apply(phaseOps)
		row := MillionUserRow{
			Phase:            name,
			Ops:              ops,
			FailedOps:        failed,
			Elapsed:          elapsed,
			MaxResidentLimit: cfg.MaxResidentPages,
			Evictions:        clusterEvictions(c) - evBefore,
			PeakHeapBytes:    heap.peak(),
		}
		if ops > 0 && elapsed > 0 {
			row.OpsPerSec = float64(ops) / elapsed.Seconds()
		}
		if mgr := ownerManager(c, largest); mgr != nil {
			stats, serr := mgr.GroupPageStats(largest)
			if serr != nil {
				return fmt.Errorf("%s phase: page stats: %w", name, serr)
			}
			row.ResidentPagesPeak = stats.HighWater
			if name == "mass-revocation" && stats.Limit > 0 && stats.HighWater > stats.Limit {
				return fmt.Errorf("mass-revocation swept %s with %d resident pages, bound is %d — paged sweep violated O(partition) memory",
					largest, stats.HighWater, stats.Limit)
			}
		}
		// Read path after the phase: sampled members must still decrypt.
		row.Decrypts, row.FailedDecrypts = samplers.sample(model, largest, rng, millionUserDecryptSamples)
		rows = append(rows, row)
		return nil
	}

	// Phase 0 — provision: create every group, chunking the big ones
	// through add-batch so no single request exceeds the residency budget
	// (or the request size cap).
	err = runPhase("provision", nil, func() (int, int, error) {
		return replayGroups(wl.Groups, func(g trace.GroupSeed) (int, int) {
			ops, failed := 0, 0
			first := g.Members
			if len(first) > chunk {
				first = first[:chunk]
			}
			ops++
			if err := rebalanceOp(c, g.Name, "create", map[string]any{
				"group": g.Name, "members": first,
			}); err != nil {
				return ops, failed + 1 // group missing: later chunks would cascade
			}
			for lo := len(first); lo < len(g.Members); lo += chunk {
				hi := lo + chunk
				if hi > len(g.Members) {
					hi = len(g.Members)
				}
				ops++
				if err := rebalanceOp(c, g.Name, "add-batch", map[string]any{
					"group": g.Name, "users": g.Members[lo:hi],
				}); err != nil {
					failed++
				}
			}
			return ops, failed
		})
	})
	if err != nil {
		return nil, err
	}

	for _, ph := range wl.Phases {
		ph := ph
		err = runPhase(ph.Name, ph.Ops, func() (int, int, error) {
			byGroup := groupOps(ph.Ops)
			return replayGroups(byGroup, func(b groupBatch) (int, int) {
				return replayGroupOps(c, b, chunk)
			})
		})
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// groupBatch is one group's ordered slice of a phase's operations.
type groupBatch struct {
	Group string
	Ops   []trace.WorkloadOp
}

// groupOps splits a phase into per-group batches, preserving per-group op
// order (cross-group order carries no dependency: users are group-scoped).
func groupOps(ops []trace.WorkloadOp) []groupBatch {
	idx := make(map[string]int)
	var out []groupBatch
	for _, op := range ops {
		i, ok := idx[op.Group]
		if !ok {
			i = len(out)
			idx[op.Group] = i
			out = append(out, groupBatch{Group: op.Group})
		}
		out[i].Ops = append(out[i].Ops, op)
	}
	return out
}

// replayGroups drives fn over every item with a bounded worker pool (one
// serial driver per group, groups in parallel — the gateway's per-group
// routing discipline) and sums the op/failure counts.
func replayGroups[T any](items []T, fn func(T) (ops, failed int)) (int, int, error) {
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		ops, failed int
	)
	ch := make(chan T)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range ch {
				o, f := fn(it)
				mu.Lock()
				ops += o
				failed += f
				mu.Unlock()
			}
		}()
	}
	for _, it := range items {
		ch <- it
	}
	close(ch)
	wg.Wait()
	return ops, failed, nil
}

// replayGroupOps replays one group's ops in order, coalescing runs of
// same-kind ops into add-batch/remove-batch requests of at most chunk users
// (one request stays inside the residency budget); isolated ops go through
// the single-user routes, exercising both paths.
func replayGroupOps(c *cluster.Cluster, b groupBatch, chunk int) (ops, failed int) {
	flush := func(kind trace.OpKind, users []string) {
		if len(users) == 0 {
			return
		}
		var route string
		body := map[string]any{"group": b.Group}
		if len(users) == 1 {
			if kind == trace.OpAdd {
				route = "add"
			} else {
				route = "remove"
			}
			body["user"] = users[0]
		} else {
			if kind == trace.OpAdd {
				route = "add-batch"
			} else {
				route = "remove-batch"
			}
			body["users"] = users
		}
		ops++
		if err := rebalanceOp(c, b.Group, route, body); err != nil {
			failed++
		}
	}
	var run []string
	var kind trace.OpKind
	for _, op := range b.Ops {
		if len(run) > 0 && (op.Kind != kind || len(run) >= chunk) {
			flush(kind, run)
			run = run[:0]
		}
		kind = op.Kind
		run = append(run, op.User)
	}
	flush(kind, run)
	return ops, failed
}

// wlModel tracks every group's live membership as phases complete.
type wlModel struct {
	members map[string][]string
	pos     map[string]map[string]int
}

func newWlModel(wl *trace.Workload) *wlModel {
	m := &wlModel{
		members: make(map[string][]string, len(wl.Groups)),
		pos:     make(map[string]map[string]int, len(wl.Groups)),
	}
	for _, g := range wl.Groups {
		m.members[g.Name] = append([]string(nil), g.Members...)
		p := make(map[string]int, len(g.Members))
		for i, u := range g.Members {
			p[u] = i
		}
		m.pos[g.Name] = p
	}
	return m
}

func (m *wlModel) apply(ops []trace.WorkloadOp) {
	for _, op := range ops {
		switch op.Kind {
		case trace.OpAdd:
			m.pos[op.Group][op.User] = len(m.members[op.Group])
			m.members[op.Group] = append(m.members[op.Group], op.User)
		case trace.OpRemove:
			i, ok := m.pos[op.Group][op.User]
			if !ok {
				continue
			}
			ms := m.members[op.Group]
			last := len(ms) - 1
			ms[i] = ms[last]
			m.pos[op.Group][ms[i]] = i
			m.members[op.Group] = ms[:last]
			delete(m.pos[op.Group], op.User)
		}
	}
}

// pick returns a uniform live member of group, or "" when empty.
func (m *wlModel) pick(group string, rng *mrand.Rand) string {
	ms := m.members[group]
	if len(ms) == 0 {
		return ""
	}
	return ms[rng.Intn(len(ms))]
}

func (m *wlModel) groups() []string {
	out := make([]string, 0, len(m.members))
	for g := range m.members {
		out = append(out, g)
	}
	return out
}

// decryptSamplers provisions (and caches) per-user decryption clients
// against shard 0's enclave — the shared master secret makes any shard's
// records decrypt with them.
type decryptSamplers struct {
	c       *cluster.Cluster
	mu      sync.Mutex
	clients map[string]*core.Client
	order   []string // deterministic group order for sampling
}

func newDecryptSamplers(c *cluster.Cluster) *decryptSamplers {
	return &decryptSamplers{c: c, clients: make(map[string]*core.Client)}
}

func (d *decryptSamplers) clientFor(user string) (*core.Client, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cl, ok := d.clients[user]; ok {
		return cl, nil
	}
	encl := d.c.Shards()[0].Encl
	priv, err := ecdh.P256().GenerateKey(crand.Reader)
	if err != nil {
		return nil, err
	}
	prov, err := encl.EcallExtractUserKey(user, priv.PublicKey())
	if err != nil {
		return nil, err
	}
	uk, err := prov.Open(encl.Scheme(), encl.IdentityPublicKey(), priv)
	if err != nil {
		return nil, err
	}
	cl, err := core.NewClient(encl.Scheme(), d.c.Shards()[0].Admin.Manager().PublicKey(), user, uk)
	if err != nil {
		return nil, err
	}
	d.clients[user] = cl
	return cl, nil
}

// sample draws n decrypts: half from the largest group (the sweep target),
// half from rng-picked groups. Every sampled member must reach a group key
// through the single-record read path.
func (d *decryptSamplers) sample(m *wlModel, largest string, rng *mrand.Rand, n int) (ok, failed int) {
	if d.order == nil {
		d.order = m.groups()
	}
	for i := 0; i < n; i++ {
		group := largest
		if i%2 == 1 && len(d.order) > 0 {
			group = d.order[rng.Intn(len(d.order))]
		}
		user := m.pick(group, rng)
		if user == "" {
			continue
		}
		mgr := ownerManager(d.c, group)
		if mgr == nil {
			failed++
			continue
		}
		if err := d.decrypt(mgr, group, user); err != nil {
			failed++
			continue
		}
		ok++
	}
	return ok, failed
}

func (d *decryptSamplers) decrypt(mgr *core.Manager, group, user string) error {
	cl, err := d.clientFor(user)
	if err != nil {
		return err
	}
	rec, err := mgr.Record(group, user)
	if err != nil {
		return err
	}
	_, err = cl.DecryptRecord(group, rec)
	return err
}

// ownerManager finds the manager currently holding group live, preferring
// ring order (the shard the router would pick first).
func ownerManager(c *cluster.Cluster, group string) *core.Manager {
	for _, id := range c.Membership().Owners(group) {
		if s := c.Shard(id); s != nil && s.Admin.Manager().HasGroup(group) {
			return s.Admin.Manager()
		}
	}
	for _, s := range c.Shards() {
		if s.Admin.Manager().HasGroup(group) {
			return s.Admin.Manager()
		}
	}
	return nil
}

// clusterEvictions sums the page-eviction counters across shards.
func clusterEvictions(c *cluster.Cluster) uint64 {
	var total uint64
	for _, s := range c.Shards() {
		total += s.Admin.Manager().PageEvictions()
	}
	return total
}

// heapWatch samples runtime.MemStats on a short period and tracks the peak
// heap-in-use seen since the last reset.
type heapWatch struct {
	mu   sync.Mutex
	max  uint64
	done chan struct{}
}

func newHeapWatch() *heapWatch {
	h := &heapWatch{done: make(chan struct{})}
	go func() {
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-h.done:
				return
			case <-t.C:
				h.observe()
			}
		}
	}()
	return h
}

func (h *heapWatch) observe() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.mu.Lock()
	if ms.HeapInuse > h.max {
		h.max = ms.HeapInuse
	}
	h.mu.Unlock()
}

func (h *heapWatch) reset() {
	h.observe()
	h.mu.Lock()
	h.max = 0
	h.mu.Unlock()
	h.observe()
}

func (h *heapWatch) peak() uint64 {
	h.observe()
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

func (h *heapWatch) stop() { close(h.done) }

// PrintMillionUser writes the scenario-sweep table.
func PrintMillionUser(w io.Writer, rows []MillionUserRow) {
	fmt.Fprintln(w, "Million-user sweep — paged group state on a live 2-shard cluster (Zipf groups, flash crowd, mass revocation, diurnal churn)")
	fmt.Fprintf(w, "%16s  %7s  %6s  %8s  %7s  %12s  %10s  %9s  %6s  %9s  %10s\n",
		"phase", "ops", "failed", "decrypts", "dfailed", "elapsed", "ops/s", "pages-hwm", "limit", "evictions", "peak-heap")
	for _, r := range rows {
		fmt.Fprintf(w, "%16s  %7d  %6d  %8d  %7d  %12s  %10.1f  %9d  %6d  %9d  %9.1fM\n",
			r.Phase, r.Ops, r.FailedOps, r.Decrypts, r.FailedDecrypts,
			r.Elapsed.Round(time.Millisecond), r.OpsPerSec,
			r.ResidentPagesPeak, r.MaxResidentLimit, r.Evictions,
			float64(r.PeakHeapBytes)/(1<<20))
	}
	fmt.Fprintln(w, "shape: the revocation sweep's pages-hwm stays at the limit — O(partition) resident memory per op, not O(group)")
}
