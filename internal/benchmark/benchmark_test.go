package benchmark

import (
	"math"
	"testing"
	"time"
)

// tinyConfig shrinks the CI grid further for unit testing.
func tinyConfig() Config {
	cfg := CIScale()
	cfg.GroupSizes = []int{8, 16, 32}
	cfg.PartitionSizes = []int{4, 8, 16}
	cfg.Capacity = 8
	cfg.AddSamples = 24
	cfg.ExtractSamples = 8
	cfg.KernelOps = 200
	cfg.KernelPeak = 20
	cfg.Fig9Partitions = []int{5, 10}
	cfg.SyntheticOps = 40
	cfg.SyntheticInitial = 50
	cfg.Fig10Partitions = []int{8}
	return cfg
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"ci", "", "medium", "paper"} {
		if _, ok := ScaleByName(name); !ok {
			t.Fatalf("scale %q unknown", name)
		}
	}
	if _, ok := ScaleByName("nope"); ok {
		t.Fatal("unknown scale accepted")
	}
}

func TestFig2ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("figure replay: skipped in -short CI runs")
	}
	rows, err := RunFig2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// IBBE metadata constant; HE metadata linear in n.
		if r.IBBEBytes != rows[0].IBBEBytes {
			t.Fatal("IBBE metadata is not constant")
		}
		if i > 0 {
			prev := rows[i-1]
			if r.HEPKIBytes <= prev.HEPKIBytes || r.HEIBEBytes <= prev.HEIBEBytes {
				t.Fatal("HE metadata did not grow with the group")
			}
		}
	}
	last := rows[len(rows)-1]
	if last.HEPKIBytes <= last.IBBEBytes {
		t.Fatal("HE metadata not larger than IBBE's")
	}
	// Raw IBBE creation must be slower than HE-PKI (the paper's 150×
	// motivates the whole construction; at tiny scale we only require >1×).
	if last.IBBECreate <= last.HEPKICreate {
		t.Fatalf("raw IBBE (%v) not slower than HE-PKI (%v)", last.IBBECreate, last.HEPKICreate)
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("figure replay: skipped in -short CI runs")
	}
	// Setup is O(m) fixed-base exponentiations at ~15µs each on the limb
	// fast path, on top of a few milliseconds of constant-cost generator
	// sampling and pairing work. The grid must reach partition sizes where
	// the linear term clears that constant, or the latency ordering drowns
	// in noise.
	cfg := tinyConfig()
	cfg.PartitionSizes = []int{16, 128, 1024}
	rows, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Setup latency grows with partition size.
	if rows[len(rows)-1].SetupLatency <= rows[0].SetupLatency {
		t.Fatal("setup latency not increasing in partition size")
	}
	// Extraction throughput is flat: within 5× across sizes (generous for
	// CI noise; the claim is independence from m).
	lo, hi := rows[0].ExtractOpsPerSec, rows[0].ExtractOpsPerSec
	for _, r := range rows {
		if r.ExtractOpsPerSec < lo {
			lo = r.ExtractOpsPerSec
		}
		if r.ExtractOpsPerSec > hi {
			hi = r.ExtractOpsPerSec
		}
		if r.ExtractOpsPerSec <= 0 {
			t.Fatal("non-positive extract throughput")
		}
	}
	if hi/lo > 5 {
		t.Fatalf("extract throughput varies %0.1f× across partition sizes", hi/lo)
	}
}

func TestFig7aShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("figure replay: skipped in -short CI runs")
	}
	// The remove crossover (HE O(n) vs IBBE-SGX O(n/m)) needs the group to
	// be a healthy multiple of the partition size: pairing operations cost
	// far more than P-256 ones, so n/m must outgrow the constant ratio.
	cfg := tinyConfig()
	cfg.Capacity = 64
	cfg.GroupSizes = []int{64, 512}
	rows, err := RunFig7a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	// Footprint: IBBE-SGX orders of magnitude smaller, and constant per
	// partition rather than per member.
	if last.IBBEBytes >= last.HEBytes {
		t.Fatal("IBBE-SGX footprint not smaller than HE")
	}
	// Remove: HE is O(n); IBBE-SGX is O(|P|). At the largest group the HE
	// remove must be slower.
	if last.HERemove <= last.IBBERemove {
		t.Fatalf("HE remove (%v) not slower than IBBE-SGX (%v) at n=%d",
			last.HERemove, last.IBBERemove, last.N)
	}
}

func TestFig8aShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("figure replay: skipped in -short CI runs")
	}
	res, err := RunFig8a(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.IBBE.Len() != res.HE.Len() || res.IBBE.Len() == 0 {
		t.Fatal("CDF sample counts broken")
	}
	// HE add is faster than IBBE-SGX add (paper: ≈ 2×).
	if res.HE.Quantile(0.5) >= res.IBBE.Quantile(0.5) {
		t.Fatalf("HE median add (%v) not faster than IBBE-SGX (%v)",
			res.HE.Quantile(0.5), res.IBBE.Quantile(0.5))
	}
	// Both arms of Algorithm 2 must have been exercised.
	if res.NewPartitionAdds == 0 || res.NewPartitionAdds == res.IBBE.Len() {
		t.Fatalf("add stream not bimodal: %d/%d new partitions", res.NewPartitionAdds, res.IBBE.Len())
	}
}

func TestFig8bShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("figure replay: skipped in -short CI runs")
	}
	cfg := tinyConfig()
	cfg.PartitionSizes = []int{16, 64, 256}
	rows, err := RunFig8b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// IBBE decrypt grows strongly with partition size (the pairing constant
	// dominates tiny partitions, so CI asserts ≥ half-linear growth; the
	// quadratic regime shows at paper scale). HE decrypt stays flat.
	first, last := rows[0], rows[len(rows)-1]
	if last.IBBEDecrypt <= first.IBBEDecrypt {
		t.Fatal("IBBE decrypt not growing with partition size")
	}
	growth := float64(last.IBBEDecrypt) / float64(first.IBBEDecrypt)
	ratio := float64(last.M) / float64(first.M)
	if growth < ratio/2 {
		t.Fatalf("IBBE decrypt growth %.1f× over a %.0fx partition range — too flat", growth, ratio)
	}
	heGrowth := float64(last.HEDecrypt) / float64(first.HEDecrypt)
	if heGrowth > growth/4 {
		t.Fatalf("HE decrypt not flat: grew %.1f×", heGrowth)
	}
}

func TestFig9ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("figure replay: skipped in -short CI runs")
	}
	rows, err := RunFig9(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ibbeRows []Fig9Row
	var heRow *Fig9Row
	for i := range rows {
		if rows[i].Scheme == "he-pki" {
			heRow = &rows[i]
		} else {
			ibbeRows = append(ibbeRows, rows[i])
		}
	}
	if heRow == nil || len(ibbeRows) != 2 {
		t.Fatalf("unexpected row shape: %+v", rows)
	}
	// Larger partitions → faster admin replay (fewer partitions to re-key),
	// slower decrypts (quadratic in m).
	if ibbeRows[1].AdminTotal >= ibbeRows[0].AdminTotal {
		t.Fatalf("larger partition did not speed up the admin: %v vs %v",
			ibbeRows[0].AdminTotal, ibbeRows[1].AdminTotal)
	}
	if ibbeRows[1].AvgDecrypt <= ibbeRows[0].AvgDecrypt {
		t.Fatalf("larger partition did not slow down decrypts: %v vs %v",
			ibbeRows[0].AvgDecrypt, ibbeRows[1].AvgDecrypt)
	}
}

func TestFig10ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("figure replay: skipped in -short CI runs")
	}
	cfg := tinyConfig()
	rows, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11*len(cfg.Fig10Partitions) {
		t.Fatalf("rows = %d", len(rows))
	}
	// The well-formed claim at any scale: replay with revocations is more
	// expensive than the pure-add workload (rate 0).
	if rows[5].Total <= rows[0].Total {
		t.Fatalf("50%% revocations (%v) not costlier than 0%% (%v)", rows[5].Total, rows[0].Total)
	}
}

func TestTable1ComplexityShape(t *testing.T) {
	rows, err := RunTable1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct{ sgx, classic float64 }{
		"Create Group Key (per partition)": {1, 2},
		"Add User to Group":                {0, 2},
		"Remove User (per partition)":      {0, 2},
		"Decrypt Group Key":                {2, 2},
		"Extract User Key":                 {0, 0},
		"System Setup":                     {1, 1},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.Operation]
		if !ok {
			t.Fatalf("unexpected operation %q", r.Operation)
		}
		if math.Abs(r.IBBESGXSlope-w.sgx) > 0.35 {
			t.Fatalf("%s: IBBE-SGX slope %.2f, want ≈ %.0f", r.Operation, r.IBBESGXSlope, w.sgx)
		}
		if math.Abs(r.ClassicSlope-w.classic) > 0.35 {
			t.Fatalf("%s: classic slope %.2f, want ≈ %.0f", r.Operation, r.ClassicSlope, w.classic)
		}
	}
}

func TestCDFBasics(t *testing.T) {
	samples := []time.Duration{4, 1, 3, 2, 5}
	c := NewCDF(samples)
	if c.Quantile(0) != 1 || c.Quantile(1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if c.Quantile(0.5) != 3 {
		t.Fatalf("median = %v", c.Quantile(0.5))
	}
	if c.Mean() != 3 {
		t.Fatalf("mean = %v", c.Mean())
	}
	if got := c.At(3); got != 0.6 {
		t.Fatalf("CDF(3) = %f", got)
	}
	empty := NewCDF(nil)
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 || empty.At(1) != 0 {
		t.Fatal("empty CDF not zero-valued")
	}
}

func TestLogLogSlope(t *testing.T) {
	// Quadratic data → slope 2.
	xs := []float64{2, 4, 8, 16}
	ys := []float64{4, 16, 64, 256}
	slope, err := LogLogSlope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-9 {
		t.Fatalf("slope = %f", slope)
	}
	if _, err := LogLogSlope([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := LogLogSlope([]float64{1, -1}, []float64{1, 1}); err == nil {
		t.Fatal("negative value accepted")
	}
	if _, err := LogLogSlope([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestSampleAveragesAndPropagates(t *testing.T) {
	calls := 0
	d, err := Sample(4, func() error { calls++; return nil })
	if err != nil || calls != 4 || d < 0 {
		t.Fatalf("Sample: %v %d %v", err, calls, d)
	}
	// iters < 1 still runs once; errors propagate.
	calls = 0
	if _, err := Sample(0, func() error { calls++; return errBoom }); err == nil || calls != 1 {
		t.Fatalf("Sample error path: %v %d", err, calls)
	}
}

var errBoom = errTest("boom")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestBytesAndDurFormatting(t *testing.T) {
	cases := map[int]string{
		512:     "512 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Fatalf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
	if Dur(90*time.Second) != "1m30s" {
		t.Fatalf("Dur = %q", Dur(90*time.Second))
	}
}

func TestOrdersOfMagnitude(t *testing.T) {
	if got := OrdersOfMagnitude(1_000_000, 1); math.Abs(got-6) > 1e-9 {
		t.Fatalf("orders = %f", got)
	}
	if OrdersOfMagnitude(0, 1) != 0 {
		t.Fatal("degenerate input not zero")
	}
}

func TestRatioFormatting(t *testing.T) {
	if Ratio(2*time.Second, time.Second) != "2.0×" {
		t.Fatal("Ratio broken")
	}
	if Ratio(time.Second, 0) != "∞×" {
		t.Fatal("Ratio division by zero")
	}
}
