package benchmark

import (
	"fmt"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/ibbe"
	"github.com/ibbesgx/ibbesgx/internal/trace"
)

// Fig9Row is one partition size of Fig. 9: kernel-trace replay.
type Fig9Row struct {
	// Scheme is "ibbe-sgx" (with M set) or "he-pki".
	Scheme string
	M      int
	// AdminTotal is the total administrator replay time (left plot).
	AdminTotal time.Duration
	// AvgDecrypt is the mean sampled user decryption time (right plot).
	AvgDecrypt time.Duration
	// Repartitions counts heuristic-triggered re-layouts during the replay.
	Repartitions int64
}

// RunFig9 regenerates Fig. 9: replay the (synthesized) Linux-kernel ACL
// trace at each partition size, and once with the HE baseline.
func RunFig9(cfg Config) ([]Fig9Row, error) {
	kcfg := trace.KernelConfig{
		TotalOps: cfg.KernelOps,
		PeakLive: cfg.KernelPeak,
		Span:     10 * 365 * 24 * time.Hour,
		Seed:     cfg.Seed,
	}
	tr, err := trace.Kernel(kcfg)
	if err != nil {
		return nil, err
	}
	sampleEvery := cfg.KernelOps / 50
	if sampleEvery < 1 {
		sampleEvery = 1
	}

	rows := make([]Fig9Row, 0, len(cfg.Fig9Partitions)+1)
	for _, m := range cfg.Fig9Partitions {
		ctl, err := NewIBBEController(cfg.Params, m, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res, err := trace.Replay(tr, ctl, trace.ReplayOptions{
			Group:       "kernel",
			SampleEvery: sampleEvery,
			Sampler:     ctl,
		})
		if err != nil {
			return nil, fmt.Errorf("fig9 m=%d: %w", m, err)
		}
		rows = append(rows, Fig9Row{
			Scheme:       "ibbe-sgx",
			M:            m,
			AdminTotal:   res.AdminTime,
			AvgDecrypt:   res.AvgDecrypt(),
			Repartitions: ctl.Mgr.Repartitions(),
		})
	}

	// HE baseline replay.
	he := NewHEPKIController()
	if err := he.RegisterAll(traceUsers(tr)); err != nil {
		return nil, err
	}
	res, err := trace.Replay(tr, he, trace.ReplayOptions{
		Group:       "kernel",
		SampleEvery: sampleEvery,
		Sampler:     he,
	})
	if err != nil {
		return nil, fmt.Errorf("fig9 he: %w", err)
	}
	rows = append(rows, Fig9Row{Scheme: "he-pki", AdminTotal: res.AdminTime, AvgDecrypt: res.AvgDecrypt()})
	return rows, nil
}

// Fig10Row is one (partition size, revocation rate) cell of Fig. 10.
type Fig10Row struct {
	M         int
	Rate      float64
	Total     time.Duration
	FinalSize int
}

// RunFig10 regenerates Fig. 10: total replay time of IBBE-SGX on synthetic
// workloads with increasing revocation ratios, per partition size.
func RunFig10(cfg Config) ([]Fig10Row, error) {
	traces, err := trace.RevocationSweep(cfg.SyntheticOps, cfg.SyntheticInitial, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig10Row, 0, len(cfg.Fig10Partitions)*len(traces))
	for _, m := range cfg.Fig10Partitions {
		for i, tr := range traces {
			ctl, err := NewIBBEController(cfg.Params, m, cfg.Seed)
			if err != nil {
				return nil, err
			}
			res, err := trace.Replay(tr, ctl, trace.ReplayOptions{Group: tr.Name})
			if err != nil {
				return nil, fmt.Errorf("fig10 m=%d rate=%d0%%: %w", m, i, err)
			}
			rows = append(rows, Fig10Row{
				M:         m,
				Rate:      float64(i) / 10,
				Total:     res.AdminTime,
				FinalSize: res.FinalMetadataBytes,
			})
		}
	}
	return rows, nil
}

// traceUsers collects every identity a trace touches.
func traceUsers(tr *trace.Trace) []string {
	seen := make(map[string]bool)
	var out []string
	for _, u := range tr.Initial {
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	for _, op := range tr.Ops {
		if !seen[op.User] {
			seen[op.User] = true
			out = append(out, op.User)
		}
	}
	return out
}

// Table1Row is one operation of Table I with its measured complexity
// exponents (slope of primitive-operation count vs. set size in log-log
// space: ≈0 constant, ≈1 linear, ≈2 quadratic).
type Table1Row struct {
	Operation    string
	IBBESGXSlope float64
	IBBESGXClaim string
	ClassicSlope float64
	ClassicClaim string
}

// RunTable1 reproduces Table I by counting primitive operations (Z_r
// multiplications + group exponentiations) at increasing set sizes and
// fitting the growth exponent — a noise-free check of the complexity
// claims.
func RunTable1(cfg Config) ([]Table1Row, error) {
	s := ibbe.NewScheme(cfg.Params)
	s.Metrics = &ibbe.Metrics{}
	sizes := []int{8, 16, 32, 64}
	maxN := sizes[len(sizes)-1]
	msk, pk, err := s.Setup(maxN, nil)
	if err != nil {
		return nil, err
	}
	groups := make([][]string, len(sizes))
	for i, n := range sizes {
		groups[i] = names(n, "table1")[:n]
	}

	// Each operation's complexity claim concerns a specific primitive: the
	// polynomial-expansion cost is Z_r multiplications, the setup cost is G1
	// exponentiations, and the O(1) claims bound every primitive. metric
	// selects the counter whose growth is fitted.
	cost := func(metric string) float64 {
		snap := s.Metrics.SnapshotMap()
		switch metric {
		case "zr":
			return float64(snap["zr_mul"])
		case "g1":
			return float64(snap["g1_exp"])
		default: // "total"
			return float64(snap["zr_mul"]) + 1000*float64(snap["g1_exp"]+snap["gt_exp"]) + 3000*float64(snap["pairings"])
		}
	}
	measure := func(metric string, op func(group []string) error) (float64, error) {
		xs := make([]float64, len(sizes))
		ys := make([]float64, len(sizes))
		for i, group := range groups {
			s.Metrics.Reset()
			if err := op(group); err != nil {
				return 0, err
			}
			xs[i] = float64(len(group))
			ys[i] = cost(metric) + 1 // +1 keeps zero-count ops fittable
		}
		return LogLogSlope(xs, ys)
	}

	rows := make([]Table1Row, 0, 6)

	slope, err := measure("zr", func(g []string) error {
		_, _, err := s.EncryptMSK(msk, pk, g, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	classicSlope, err := measure("zr", func(g []string) error {
		_, _, err := s.EncryptClassic(pk, g, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Operation:    "Create Group Key (per partition)",
		IBBESGXSlope: slope, IBBESGXClaim: "O(|p|)",
		ClassicSlope: classicSlope, ClassicClaim: "O(|S|^2)",
	})

	// Add user: O(1) for IBBE-SGX; classic IBBE re-encrypts quadratically.
	cts := make([]*ibbe.Ciphertext, len(sizes))
	for i, g := range groups {
		_, ct, err := s.EncryptMSK(msk, pk, g, nil)
		if err != nil {
			return nil, err
		}
		cts[i] = ct
	}
	idx := 0
	slope, err = measure("total", func(g []string) error {
		s.AddUser(msk, cts[idx], "joiner@bench.example")
		idx++
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Operation:    "Add User to Group",
		IBBESGXSlope: slope, IBBESGXClaim: "O(1)",
		ClassicSlope: classicSlope, ClassicClaim: "O(|S|^2)",
	})

	// Remove user: O(1) per partition for IBBE-SGX.
	idx = 0
	slope, err = measure("total", func(g []string) error {
		_, _, err := s.RemoveUser(msk, pk, cts[idx], g[0], nil)
		idx++
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Operation:    "Remove User (per partition)",
		IBBESGXSlope: slope, IBBESGXClaim: "O(1)",
		ClassicSlope: classicSlope, ClassicClaim: "O(|S|^2)",
	})

	// Decrypt: quadratic in partition size under both models.
	uks := make([]*ibbe.UserKey, len(sizes))
	for i, g := range groups {
		uk, err := s.Extract(msk, g[0])
		if err != nil {
			return nil, err
		}
		uks[i] = uk
	}
	idx = 0
	slope, err = measure("zr", func(g []string) error {
		_, err := s.Decrypt(pk, g[0], uks[idx], g, cts[idx])
		idx++
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Operation:    "Decrypt Group Key",
		IBBESGXSlope: slope, IBBESGXClaim: "O(|p|^2)",
		ClassicSlope: slope, ClassicClaim: "O(|S|^2)",
	})

	// Extract user key: O(1) under both models.
	i := 0
	slope, err = measure("total", func(g []string) error {
		_, err := s.Extract(msk, fmt.Sprintf("extract-%d@bench.example", i))
		i++
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Operation:    "Extract User Key",
		IBBESGXSlope: slope, IBBESGXClaim: "O(1)",
		ClassicSlope: slope, ClassicClaim: "O(1)",
	})

	// System setup: linear in the supported (partition) size.
	setupScheme := ibbe.NewScheme(cfg.Params)
	setupScheme.Metrics = &ibbe.Metrics{}
	xs := make([]float64, len(sizes))
	ys := make([]float64, len(sizes))
	for i, n := range sizes {
		setupScheme.Metrics.Reset()
		if _, _, err := setupScheme.Setup(n, nil); err != nil {
			return nil, err
		}
		xs[i] = float64(n)
		ys[i] = float64(setupScheme.Metrics.SnapshotMap()["g1_exp"]) + 1
	}
	slope, err = LogLogSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Operation:    "System Setup",
		IBBESGXSlope: slope, IBBESGXClaim: "O(|p|)",
		ClassicSlope: slope, ClassicClaim: "O(|S|)",
	})

	return rows, nil
}
