package benchmark

import (
	"fmt"
	"io"
	"time"
)

// Bytes renders a byte count with binary units, as the paper's size axes.
func Bytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Dur renders a duration rounded for table display.
func Dur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// PrintFig2 writes the Fig. 2 table.
func PrintFig2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintln(w, "Figure 2 — raw schemes, group creation latency (a) and metadata expansion (b)")
	fmt.Fprintf(w, "%10s  %14s  %14s  %14s  %12s  %12s  %12s\n",
		"users", "HE-PKI", "HE-IBE", "IBBE", "HE-PKI size", "HE-IBE size", "IBBE size")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d  %14s  %14s  %14s  %12s  %12s  %12s\n",
			r.N, Dur(r.HEPKICreate), Dur(r.HEIBECreate), Dur(r.IBBECreate),
			Bytes(r.HEPKIBytes), Bytes(r.HEIBEBytes), Bytes(r.IBBEBytes))
	}
	if len(rows) > 1 {
		last := rows[len(rows)-1]
		fmt.Fprintf(w, "shape: IBBE %.0f× slower than HE-PKI at n=%d; IBBE metadata constant, HE linear (%.1f orders smaller)\n",
			float64(last.IBBECreate)/float64(max64(1, int64(last.HEPKICreate))), last.N,
			OrdersOfMagnitude(float64(last.HEPKIBytes), float64(last.IBBEBytes)))
	}
}

// PrintFig6 writes the Fig. 6 table.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6 — bootstrap: system setup latency (a), key-extract throughput (b)")
	fmt.Fprintf(w, "%14s  %16s  %18s\n", "partition size", "setup latency", "extract (op/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%14d  %16s  %18.0f\n", r.M, Dur(r.SetupLatency), r.ExtractOpsPerSec)
	}
}

// PrintFig7a writes the Fig. 7a table.
func PrintFig7a(w io.Writer, rows []Fig7aRow) {
	fmt.Fprintln(w, "Figure 7a — IBBE-SGX vs HE: create, remove, storage footprint")
	fmt.Fprintf(w, "%10s  %12s  %12s  %12s  %12s  %12s  %12s\n",
		"group", "IBBE create", "HE create", "IBBE remove", "HE remove", "IBBE bytes", "HE bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d  %12s  %12s  %12s  %12s  %12s  %12s\n",
			r.N, Dur(r.IBBECreate), Dur(r.HECreate), Dur(r.IBBERemove), Dur(r.HERemove),
			Bytes(r.IBBEBytes), Bytes(r.HEBytes))
	}
	if len(rows) > 0 {
		last := rows[len(rows)-1]
		fmt.Fprintf(w, "shape at n=%d: create %.1f orders faster, remove %.1f orders faster, footprint %.1f orders smaller\n",
			last.N,
			OrdersOfMagnitude(float64(last.HECreate), float64(last.IBBECreate)),
			OrdersOfMagnitude(float64(last.HERemove), float64(last.IBBERemove)),
			OrdersOfMagnitude(float64(last.HEBytes), float64(last.IBBEBytes)))
	}
}

// PrintFig7b writes the Fig. 7b table.
func PrintFig7b(w io.Writer, rows []Fig7bRow) {
	fmt.Fprintln(w, "Figure 7b — IBBE-SGX across partition sizes")
	fmt.Fprintf(w, "%10s  %14s  %12s  %12s  %12s\n", "group", "partition", "create", "remove", "footprint")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d  %14d  %12s  %12s  %12s\n", r.N, r.M, Dur(r.Create), Dur(r.Remove), Bytes(r.Bytes))
	}
}

// PrintFig8a writes the Fig. 8a CDF table.
func PrintFig8a(w io.Writer, res *Fig8aResult) {
	fmt.Fprintln(w, "Figure 8a — CDF of add-user latency")
	fmt.Fprintf(w, "%6s  %14s  %14s\n", "CDF", "IBBE-SGX", "HE")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.8, 0.9, 0.95, 0.99} {
		fmt.Fprintf(w, "%6.2f  %14s  %14s\n", q, Dur(res.IBBE.Quantile(q)), Dur(res.HE.Quantile(q)))
	}
	fmt.Fprintf(w, "adds that opened a new partition (slow mode): %d of %d\n",
		res.NewPartitionAdds, res.IBBE.Len())
	fmt.Fprintf(w, "shape: HE median %s vs IBBE-SGX median %s (paper: HE ≈ 2× faster)\n",
		Dur(res.HE.Quantile(0.5)), Dur(res.IBBE.Quantile(0.5)))
}

// PrintFig8b writes the Fig. 8b table.
func PrintFig8b(w io.Writer, rows []Fig8bRow) {
	fmt.Fprintln(w, "Figure 8b — client decryption latency per partition size")
	fmt.Fprintf(w, "%14s  %14s  %14s\n", "partition size", "IBBE-SGX", "HE")
	for _, r := range rows {
		fmt.Fprintf(w, "%14d  %14s  %14s\n", r.M, Dur(r.IBBEDecrypt), Dur(r.HEDecrypt))
	}
	if len(rows) > 1 {
		first, last := rows[0], rows[len(rows)-1]
		fmt.Fprintf(w, "shape: IBBE decrypt grows %s → %s (quadratic); HE stays flat\n",
			Dur(first.IBBEDecrypt), Dur(last.IBBEDecrypt))
	}
}

// PrintFig9 writes the Fig. 9 table.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9 — Linux-kernel ACL trace replay")
	fmt.Fprintf(w, "%10s  %10s  %16s  %16s  %14s\n", "scheme", "partition", "admin total", "avg decrypt", "repartitions")
	for _, r := range rows {
		m := "-"
		if r.M > 0 {
			m = fmt.Sprintf("%d", r.M)
		}
		fmt.Fprintf(w, "%10s  %10s  %16s  %16s  %14d\n", r.Scheme, m, Dur(r.AdminTotal), Dur(r.AvgDecrypt), r.Repartitions)
	}
}

// PrintFig10 writes the Fig. 10 table.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Figure 10 — synthetic workloads per revocation rate")
	fmt.Fprintf(w, "%10s  %6s  %16s\n", "partition", "rate", "total replay")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d  %5.0f%%  %16s\n", r.M, r.Rate*100, Dur(r.Total))
	}
}

// PrintTable1 writes the Table I reproduction.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table I — measured complexity exponents (log-log slope of op counts)")
	fmt.Fprintf(w, "%-36s  %10s %-10s  %10s %-10s\n", "operation", "IBBE-SGX", "(claim)", "IBBE", "(claim)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s  %10.2f %-10s  %10.2f %-10s\n",
			r.Operation, r.IBBESGXSlope, r.IBBESGXClaim, r.ClassicSlope, r.ClassicClaim)
	}
}

// PrintParallel writes the parallel-partition-engine table.
func PrintParallel(w io.Writer, rows []ParallelRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Parallel partition engine — serial vs %d workers, per operation\n", rows[0].Workers)
	fmt.Fprintf(w, "%10s  %12s  %12s  %7s  %12s  %12s  %7s  %12s  %12s  %7s\n",
		"partitions", "create ser", "create par", "×",
		"remove ser", "remove par", "×",
		"rekey ser", "rekey par", "×")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d  %12s  %12s  %6.2fx  %12s  %12s  %6.2fx  %12s  %12s  %6.2fx\n",
			r.Partitions,
			Dur(r.SerialCreate), Dur(r.ParallelCreate), r.CreateSpeedup(),
			Dur(r.SerialRemove), Dur(r.ParallelRemove), r.RemoveSpeedup(),
			Dur(r.SerialRekey), Dur(r.ParallelRekey), r.RekeySpeedup())
	}
	last := rows[len(rows)-1]
	fmt.Fprintf(w, "shape: partition ciphertexts are independent (§IV-C), so speedup approaches min(partitions, cores); at %d partitions create runs %.2f× faster\n",
		last.Partitions, last.CreateSpeedup())
}

// PrintBatch writes the batched-membership table.
func PrintBatch(w io.Writer, rows []BatchRow) {
	fmt.Fprintln(w, "Batched membership — N singular ops vs one batched call (serial engine)")
	fmt.Fprintf(w, "%6s  %12s  %12s  %7s  %12s  %12s  %7s  %10s  %10s\n",
		"batch", "add loop", "add batch", "×",
		"rm loop", "rm batch", "×", "loop puts", "batch puts")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d  %12s  %12s  %6.2fx  %12s  %12s  %6.2fx  %10d  %10d\n",
			r.BatchSize,
			Dur(r.LoopedAdd), Dur(r.BatchedAdd), r.AddSpeedup(),
			Dur(r.LoopedRemove), Dur(r.BatchedRemove), r.RemoveSpeedup(),
			r.LoopedRemovePuts, r.BatchedRemovePuts)
	}
	if len(rows) > 0 {
		last := rows[len(rows)-1]
		fmt.Fprintf(w, "shape: a looped removal of n users re-keys every partition n times (%d record puts); the batch re-keys each once (%d), so the gap grows linearly in n\n",
			last.LoopedRemovePuts, last.BatchedRemovePuts)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
