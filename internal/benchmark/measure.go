package benchmark

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample runs f repeatedly (at least once) and returns the mean duration.
// It is the building block for the figure benchmarks, which report means
// over a handful of iterations as the paper does.
func Sample(iters int, f func() error) (time.Duration, error) {
	if iters < 1 {
		iters = 1
	}
	var total time.Duration
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(iters), nil
}

// CDF holds an empirical latency distribution (Fig. 8a).
type CDF struct {
	sorted []time.Duration
}

// NewCDF builds a CDF from samples.
func NewCDF(samples []time.Duration) *CDF {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the distribution.
func (c *CDF) Quantile(q float64) time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q * float64(len(c.sorted)-1))
	return c.sorted[idx]
}

// At returns the empirical CDF value at latency d.
func (c *CDF) At(d time.Duration) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	n := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > d })
	return float64(n) / float64(len(c.sorted))
}

// Mean returns the mean of the samples.
func (c *CDF) Mean() time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range c.sorted {
		total += d
	}
	return total / time.Duration(len(c.sorted))
}

// LogLogSlope fits the exponent b of y = a·x^b by least squares in log-log
// space — the tool the Table I reproduction uses to check measured
// complexity orders (b ≈ 1 linear, b ≈ 2 quadratic, b ≈ 0 constant).
func LogLogSlope(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, fmt.Errorf("benchmark: need ≥ 2 paired points, got %d/%d", len(xs), len(ys))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, fmt.Errorf("benchmark: log-log fit needs positive values")
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("benchmark: degenerate x values")
	}
	return (n*sxy - sx*sy) / den, nil
}

// Ratio renders a/b as "N.N×" (for speedup lines in reports).
func Ratio(a, b time.Duration) string {
	if b == 0 {
		return "∞×"
	}
	return fmt.Sprintf("%.1f×", float64(a)/float64(b))
}

// OrdersOfMagnitude returns log10(a/b) — how the paper states its headline
// results ("1.2 orders of magnitude faster", "6 orders smaller").
func OrdersOfMagnitude(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Log10(a / b)
}
