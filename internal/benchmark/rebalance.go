package benchmark

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/cluster"
	"github.com/ibbesgx/ibbesgx/internal/storage"
	"github.com/ibbesgx/ibbesgx/internal/trace"
)

// RebalanceRow is one phase of the elastic-membership figure: a mixed
// membership workload runs continuously over many groups while the cluster
// grows from 2 to 4 shards mid-workload. The "pre" and "post" rows measure
// steady-state throughput at each size; the "handoff" row measures the
// disruption of the membership changes themselves — the wall time of the
// two ApplyMembership calls (drain + epoch propagation) and the worst
// single-operation latency any client saw while the arcs moved.
type RebalanceRow struct {
	Phase  string `json:"phase"` // pre | handoff | post
	Shards int    `json:"shards"`
	Groups int    `json:"groups"`
	Ops    int    `json:"ops"`

	Elapsed   time.Duration `json:"elapsed_ns"`
	OpsPerSec float64       `json:"ops_per_sec"`

	// Handoff-only fields.
	// Moved counts groups whose owner changed across the grow (must stay
	// arc-bounded: every move lands on a joining shard).
	Moved int `json:"moved,omitempty"`
	// ApplyTime is the wall time of the ApplyMembership calls themselves.
	ApplyTime time.Duration `json:"apply_ns,omitempty"`
	// MaxOpLatency is the worst single-op latency during the hand-off
	// window — the pause an unlucky client experienced.
	MaxOpLatency time.Duration `json:"max_op_latency_ns,omitempty"`
}

// RunRebalance measures the grow-mid-workload scenario: 8 groups churn
// memberships through the shard handlers while the cluster grows 2→4, with
// the same injected cloud PUT latency as RunCluster so the hand-off pause
// is measured against realistic apply costs.
func RunRebalance(cfg Config) ([]RebalanceRow, error) {
	const groups = 8
	opsPerGroup := cfg.SyntheticOps / 12
	if opsPerGroup < 9 {
		opsPerGroup = 9
	}
	// Three equal slices: pre (2 shards), handoff, post (4 shards).
	slice := opsPerGroup / 3
	initial := cfg.Capacity * 2

	traces := make([]*trace.Trace, groups)
	for i := range traces {
		tr, err := trace.Synthetic(trace.SyntheticConfig{
			Ops:            slice * 3,
			RevocationRate: 0.3,
			InitialSize:    initial,
			Seed:           cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		traces[i] = tr
	}

	mem := storage.NewMemStore(storage.Latency{Put: benchPutLatency})
	c, err := cluster.New(cluster.Options{
		Shards:   2,
		Capacity: cfg.Capacity,
		Params:   cfg.Params,
		Store:    mem,
		LeaseTTL: 10 * time.Minute, // no expiry churn inside a bench run
		Seed:     cfg.Seed,
		Workers:  1,
	})
	if err != nil {
		return nil, err
	}

	ctx := context.Background()
	groupName := func(i int) string { return fmt.Sprintf("rebalance-g%03d", i) }

	// Setup (untimed): create every group with its initial member set.
	for i, tr := range traces {
		if err := rebalanceOp(c, groupName(i), "create", map[string]any{
			"group": groupName(i), "members": tr.Initial,
		}); err != nil {
			return nil, err
		}
	}

	// runPhase replays ops[from:to) of every group concurrently (one serial
	// driver per group, mimicking the gateway's per-group routing) and
	// reports the phase's op count, elapsed time and worst op latency.
	runPhase := func(from, to int) (int, time.Duration, time.Duration, error) {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
			total    int
			maxLat   time.Duration
		)
		start := time.Now()
		for i := range traces {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				g := groupName(i)
				ops := 0
				worst := time.Duration(0)
				for _, op := range traces[i].Ops[from:to] {
					route := "add"
					if op.Kind == trace.OpRemove {
						route = "remove"
					}
					opStart := time.Now()
					err := rebalanceOp(c, g, route, map[string]any{"group": g, "user": op.User})
					if lat := time.Since(opStart); lat > worst {
						worst = lat
					}
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("%s %s on %s: %w", route, op.User, g, err)
						}
						mu.Unlock()
						return
					}
					ops++
				}
				mu.Lock()
				total += ops
				if worst > maxLat {
					maxLat = worst
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		return total, time.Since(start), maxLat, firstErr
	}

	rows := make([]RebalanceRow, 0, 3)
	row := func(phase string, shards, ops int, elapsed time.Duration) RebalanceRow {
		r := RebalanceRow{Phase: phase, Shards: shards, Groups: groups, Ops: ops, Elapsed: elapsed}
		if ops > 0 && elapsed > 0 {
			r.OpsPerSec = float64(ops) / elapsed.Seconds()
		}
		return r
	}

	// Phase 1: steady state on 2 shards.
	ops, elapsed, _, err := runPhase(0, slice)
	if err != nil {
		return nil, fmt.Errorf("pre phase: %w", err)
	}
	rows = append(rows, row("pre", 2, ops, elapsed))

	// Phase 2: the same workload keeps running while the cluster grows to 4
	// shards — two membership changes, each moving one joining shard's arc.
	before := c.Membership()
	phaseDone := make(chan struct{})
	var hand RebalanceRow
	go func() {
		defer close(phaseDone)
		ops, elapsed, maxLat, perr := runPhase(slice, 2*slice)
		if perr != nil && err == nil {
			err = fmt.Errorf("handoff phase: %w", perr)
		}
		hand = row("handoff", 4, ops, elapsed)
		hand.MaxOpLatency = maxLat
	}()
	applyStart := time.Now()
	for j := 0; j < 2; j++ {
		s, aerr := c.AddShard()
		if aerr != nil {
			return nil, aerr
		}
		if _, aerr := c.Admit(ctx, s.ID); aerr != nil {
			return nil, aerr
		}
	}
	applyTime := time.Since(applyStart)
	<-phaseDone
	if err != nil {
		return nil, err
	}
	after := c.Membership()
	for i := range traces {
		g := groupName(i)
		if ob, oa := before.Owner(g), after.Owner(g); ob != oa {
			hand.Moved++
			if oa != "shard-2" && oa != "shard-3" {
				return nil, fmt.Errorf("benchmark: %s moved %s→%s — not arc-bounded", g, ob, oa)
			}
		}
	}
	hand.ApplyTime = applyTime
	rows = append(rows, hand)

	// Phase 3: steady state on 4 shards.
	ops, elapsed, _, err = runPhase(2*slice, 3*slice)
	if err != nil {
		return nil, fmt.Errorf("post phase: %w", err)
	}
	rows = append(rows, row("post", 4, ops, elapsed))
	return rows, nil
}

// rebalanceOp drives one admin operation through the shard handlers the way
// the gateway would: candidates in ring order under the CURRENT membership,
// 503 means "not the owner (or mid hand-off), try the next candidate".
func rebalanceOp(c *cluster.Cluster, group, route string, body map[string]any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		m := c.Membership()
		for _, id := range m.Owners(group) {
			shard := c.Shard(id)
			if shard == nil {
				continue
			}
			req := httptest.NewRequest(http.MethodPost, "/admin/"+route, strings.NewReader(string(blob)))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			shard.ServeHTTP(rec, req)
			if rec.Code == http.StatusServiceUnavailable {
				continue
			}
			if rec.Code >= 300 {
				return fmt.Errorf("benchmark: shard answered %d: %s", rec.Code, strings.TrimSpace(rec.Body.String()))
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("benchmark: no shard served %s for %s before the deadline", route, group)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// PrintRebalance writes the elastic-membership table.
func PrintRebalance(w io.Writer, rows []RebalanceRow) {
	fmt.Fprintln(w, "Rebalance — live grow 2→4 shards under a mixed add/remove workload (serial admin per shard)")
	fmt.Fprintf(w, "%8s  %7s  %7s  %7s  %12s  %10s  %7s  %12s  %14s\n",
		"phase", "shards", "groups", "ops", "elapsed", "ops/s", "moved", "apply", "max-op-pause")
	for _, r := range rows {
		moved, apply, pause := "", "", ""
		if r.Phase == "handoff" {
			moved = fmt.Sprintf("%d", r.Moved)
			apply = Dur(r.ApplyTime)
			pause = Dur(r.MaxOpLatency)
		}
		fmt.Fprintf(w, "%8s  %7d  %7d  %7d  %12s  %10.1f  %7s  %12s  %14s\n",
			r.Phase, r.Shards, r.Groups, r.Ops, Dur(r.Elapsed), r.OpsPerSec, moved, apply, pause)
	}
	if len(rows) == 3 {
		pre, hand, post := rows[0], rows[1], rows[2]
		fmt.Fprintf(w, "shape: grew 2→4 live with zero failed ops; %d/%d groups moved (arc-bounded), worst client pause %s; steady state %.1f ops/s before vs %.1f after\n",
			hand.Moved, hand.Groups, Dur(hand.MaxOpLatency), pre.OpsPerSec, post.OpsPerSec)
	}
}
