package benchmark

import (
	"strings"
	"testing"
)

func TestRunParallelProducesAllCells(t *testing.T) {
	rows, err := RunParallel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.SerialCreate <= 0 || r.ParallelCreate <= 0 ||
			r.SerialRemove <= 0 || r.ParallelRemove <= 0 ||
			r.SerialRekey <= 0 || r.ParallelRekey <= 0 {
			t.Fatalf("row %d has an empty cell: %+v", r.Partitions, r)
		}
		if r.Workers < 1 {
			t.Fatalf("row %d reports %d workers", r.Partitions, r.Workers)
		}
	}
	var sb strings.Builder
	PrintParallel(&sb, rows)
	if !strings.Contains(sb.String(), "Parallel partition engine") {
		t.Fatal("printer emitted nothing")
	}
}

func TestRunBatchAmortisesRekeyPasses(t *testing.T) {
	rows, err := RunBatch(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		// The batched removal re-keys each remaining partition exactly once:
		// the base group is 4 full partitions and every batch only removes
		// users it previously added, so exactly 4 records are re-published.
		if r.BatchedRemovePuts != 4 {
			t.Fatalf("batch %d: batched removal published %d records, want 4", r.BatchSize, r.BatchedRemovePuts)
		}
		// The looped removal re-publishes partitions once per removed user;
		// with n ≥ 2 it must strictly exceed the batched pass.
		if r.BatchSize >= 2 && r.LoopedRemovePuts <= r.BatchedRemovePuts {
			t.Fatalf("batch %d: looped puts %d not above batched %d",
				r.BatchSize, r.LoopedRemovePuts, r.BatchedRemovePuts)
		}
	}
	var sb strings.Builder
	PrintBatch(&sb, rows)
	if !strings.Contains(sb.String(), "Batched membership") {
		t.Fatal("printer emitted nothing")
	}
}
