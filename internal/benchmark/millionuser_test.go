package benchmark

import "testing"

// TestMillionUserSweep runs the scenario suite at a trimmed CI scale: the
// full phase set on a live 2-shard cluster, gated on the exact properties
// the benchdiff guard enforces — every op and every sampled decrypt
// succeeds, and the mass-revocation sweep over the largest group never
// holds more resident pages than the configured bound.
func TestMillionUserSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("live-cluster sweep: skipped in -short CI runs")
	}
	cfg := CIScale()
	// Trim below bench scale: the shape (many Zipf groups, all four
	// phases, residency bound smaller than the largest group's page
	// count) is what the test asserts, not throughput.
	cfg.WLUsers = 2_000
	cfg.WLGroups = 24
	cfg.WLDiurnalOps = 120
	cfg.MaxResidentPages = 4

	rows, err := RunMillionUser(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantPhases := []string{"provision", "flash-crowd", "mass-revocation", "diurnal"}
	if len(rows) != len(wantPhases) {
		t.Fatalf("rows = %d, want %d", len(rows), len(wantPhases))
	}
	for i, r := range rows {
		if r.Phase != wantPhases[i] {
			t.Fatalf("row %d phase = %q, want %q", i, r.Phase, wantPhases[i])
		}
		if r.Ops == 0 {
			t.Fatalf("%s phase replayed no ops", r.Phase)
		}
		if r.FailedOps != 0 {
			t.Fatalf("%s phase: %d failed ops", r.Phase, r.FailedOps)
		}
		if r.Decrypts == 0 {
			t.Fatalf("%s phase sampled no decrypts", r.Phase)
		}
		if r.FailedDecrypts != 0 {
			t.Fatalf("%s phase: %d failed decrypts", r.Phase, r.FailedDecrypts)
		}
		if r.MaxResidentLimit != cfg.MaxResidentPages {
			t.Fatalf("%s phase reports limit %d, want %d", r.Phase, r.MaxResidentLimit, cfg.MaxResidentPages)
		}
		if r.Phase == "mass-revocation" && r.ResidentPagesPeak > r.MaxResidentLimit {
			t.Fatalf("revocation sweep peaked at %d resident pages, bound is %d",
				r.ResidentPagesPeak, r.MaxResidentLimit)
		}
	}
	// Paging must actually be exercised: the bound is far below the page
	// population, so a zero eviction count means the LRU never engaged.
	var ev uint64
	for _, r := range rows {
		ev += r.Evictions
	}
	if ev == 0 {
		t.Fatal("sweep ran without a single page eviction — residency bound not engaged")
	}
}
