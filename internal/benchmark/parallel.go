package benchmark

import (
	"fmt"
	"runtime"
	"time"
)

// ParallelRow is one partition count of the parallel-engine figure: the
// latency of the three partition-sweeping operations (group creation,
// removal re-keying, group re-key) with the worker pool disabled (serial)
// and sized to the machine (parallel). Partition ciphertexts are mutually
// independent (§IV-C), so the parallel engine's speedup should approach
// min(partitions, cores).
type ParallelRow struct {
	Partitions int
	Workers    int

	SerialCreate, ParallelCreate time.Duration
	SerialRemove, ParallelRemove time.Duration
	SerialRekey, ParallelRekey   time.Duration
}

// CreateSpeedup returns serial/parallel for group creation.
func (r ParallelRow) CreateSpeedup() float64 {
	return float64(r.SerialCreate) / float64(max64(1, int64(r.ParallelCreate)))
}

// RemoveSpeedup returns serial/parallel for removal re-keying.
func (r ParallelRow) RemoveSpeedup() float64 {
	return float64(r.SerialRemove) / float64(max64(1, int64(r.ParallelRemove)))
}

// RekeySpeedup returns serial/parallel for group re-keying.
func (r ParallelRow) RekeySpeedup() float64 {
	return float64(r.SerialRekey) / float64(max64(1, int64(r.ParallelRekey)))
}

// RunParallel measures the parallel partition engine against its own serial
// path on groups of 2, 4, 8 and 16 full partitions at the configured
// capacity. Both sides run the identical per-partition ECALL sequence; only
// the worker-pool bound differs.
func RunParallel(cfg Config) ([]ParallelRow, error) {
	workers := runtime.NumCPU()
	rows := make([]ParallelRow, 0, 4)
	for _, partitions := range []int{2, 4, 8, 16} {
		row := ParallelRow{Partitions: partitions, Workers: workers}
		members := names(partitions*cfg.Capacity, fmt.Sprintf("par-%d", partitions))
		for _, parallel := range []bool{false, true} {
			ctl, err := NewIBBEController(cfg.Params, cfg.Capacity, cfg.Seed)
			if err != nil {
				return nil, err
			}
			ctl.Mgr.DisableRepartition = true
			if parallel {
				ctl.Mgr.SetParallelism(workers)
			} else {
				ctl.Mgr.SetParallelism(1)
			}

			create, err := Sample(1, func() error { return ctl.CreateGroup("g", members) })
			if err != nil {
				return nil, err
			}
			remove, err := Sample(1, func() error { return ctl.RemoveUser("g", members[0]) })
			if err != nil {
				return nil, err
			}
			rekey, err := Sample(1, func() error {
				_, err := ctl.Mgr.RekeyGroup("g")
				return err
			})
			if err != nil {
				return nil, err
			}
			if parallel {
				row.ParallelCreate, row.ParallelRemove, row.ParallelRekey = create, remove, rekey
			} else {
				row.SerialCreate, row.SerialRemove, row.SerialRekey = create, remove, rekey
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BatchRow is one batch size of the batched-membership figure: adding and
// removing n users as n singular operations (the pre-batching admin loop)
// against one batched call. The record-publish counters expose the
// amortisation directly: a looped removal of n users re-keys every remaining
// partition n times, the batched removal exactly once.
type BatchRow struct {
	BatchSize int

	LoopedAdd, BatchedAdd       time.Duration
	LoopedRemove, BatchedRemove time.Duration

	// LoopedRemovePuts / BatchedRemovePuts count partition records published
	// by the removal — each PUT is one partition re-key pass in the enclave.
	LoopedRemovePuts, BatchedRemovePuts int
}

// AddSpeedup returns looped/batched for the add path.
func (r BatchRow) AddSpeedup() float64 {
	return float64(r.LoopedAdd) / float64(max64(1, int64(r.BatchedAdd)))
}

// RemoveSpeedup returns looped/batched for the remove path.
func (r BatchRow) RemoveSpeedup() float64 {
	return float64(r.LoopedRemove) / float64(max64(1, int64(r.BatchedRemove)))
}

// RunBatch measures batched AddUsers/RemoveUsers against the equivalent
// loop of singular operations on a base group of four full partitions.
// Batch sizes sweep from a quarter partition to a full partition's worth of
// users. Both sides run serially (parallelism 1) so the figure isolates the
// batching effect from the worker-pool effect RunParallel measures.
func RunBatch(cfg Config) ([]BatchRow, error) {
	base := names(4*cfg.Capacity, "batch-base")
	sizes := []int{cfg.Capacity / 4, cfg.Capacity / 2, cfg.Capacity}
	rows := make([]BatchRow, 0, len(sizes))
	for _, n := range sizes {
		if n < 1 {
			n = 1
		}
		row := BatchRow{BatchSize: n}
		joiners := names(n, fmt.Sprintf("batch-join-%d", n))

		for _, batched := range []bool{false, true} {
			ctl, err := NewIBBEController(cfg.Params, cfg.Capacity, cfg.Seed)
			if err != nil {
				return nil, err
			}
			ctl.Mgr.DisableRepartition = true
			ctl.Mgr.SetParallelism(1)
			if err := ctl.CreateGroup("g", base); err != nil {
				return nil, err
			}

			var addDur, remDur time.Duration
			var remPuts int
			if batched {
				addDur, err = Sample(1, func() error {
					_, err := ctl.Mgr.AddUsers("g", joiners)
					return err
				})
				if err != nil {
					return nil, err
				}
				remDur, err = Sample(1, func() error {
					up, err := ctl.Mgr.RemoveUsers("g", joiners)
					if up != nil {
						remPuts += len(up.Put)
					}
					return err
				})
				if err != nil {
					return nil, err
				}
				row.BatchedAdd, row.BatchedRemove, row.BatchedRemovePuts = addDur, remDur, remPuts
			} else {
				addDur, err = Sample(1, func() error {
					for _, u := range joiners {
						if _, err := ctl.Mgr.AddUser("g", u); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				remDur, err = Sample(1, func() error {
					for _, u := range joiners {
						up, err := ctl.Mgr.RemoveUser("g", u)
						if up != nil {
							remPuts += len(up.Put)
						}
						if err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				row.LoopedAdd, row.LoopedRemove, row.LoopedRemovePuts = addDur, remDur, remPuts
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
