package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTraceSpansAndSnapshot(t *testing.T) {
	tr := NewTracer(4)
	trace, root := tr.StartTrace("route")
	if trace == nil || root == nil {
		t.Fatal("StartTrace returned nil")
	}
	ctx := ContextWithTrace(context.Background(), trace, root)
	if TraceID(ctx) != trace.ID {
		t.Fatalf("TraceID = %q, want %q", TraceID(ctx), trace.ID)
	}
	ctx2, child := StartSpan(ctx, "store.put")
	if child.Parent != root.ID {
		t.Fatalf("child parent = %d, want %d", child.Parent, root.ID)
	}
	_, grand := StartSpan(ctx2, "inner")
	if grand.Parent != child.ID {
		t.Fatalf("grandchild parent = %d, want %d", grand.Parent, child.ID)
	}
	grand.End(errors.New("boom"))
	child.End(nil)
	root.End(nil)

	dumps := tr.Snapshot()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if d.ID != trace.ID || len(d.Spans) != 3 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Spans[0].Err != "boom" {
		t.Fatalf("first recorded span err = %q", d.Spans[0].Err)
	}
}

func TestJoinTraceMergesInProcess(t *testing.T) {
	tr := NewTracer(4)
	trace, root := tr.StartTrace("route")
	// The shard side joins by header value and must land in the same trace.
	joined, shardRoot := tr.JoinTrace(trace.ID, "shard")
	if joined != trace {
		t.Fatal("JoinTrace minted a new trace for a live ID")
	}
	shardRoot.End(nil)
	root.End(nil)
	dumps := tr.Snapshot()
	if len(dumps) != 1 || len(dumps[0].Spans) != 2 {
		t.Fatalf("dumps = %+v", dumps)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 3; i++ {
		_, root := tr.StartTrace("op")
		root.End(nil)
	}
	if n := len(tr.Snapshot()); n != 2 {
		t.Fatalf("ring holds %d traces, want 2", n)
	}
	if n := len(tr.byID); n != 2 {
		t.Fatalf("byID holds %d entries, want 2", n)
	}
}

func TestSlowOpLogging(t *testing.T) {
	tr := NewTracer(4)
	tr.Slow = time.Nanosecond
	var logged []string
	tr.Logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	_, root := tr.StartTrace("slowthing")
	time.Sleep(time.Millisecond)
	root.End(nil)
	if len(logged) != 1 || !strings.Contains(logged[0], "slowthing") {
		t.Fatalf("logged = %v", logged)
	}
}

func TestNilTracerAndSpans(t *testing.T) {
	var tr *Tracer
	trace, root := tr.StartTrace("x")
	if trace != nil || root != nil {
		t.Fatal("nil tracer minted a trace")
	}
	root.End(nil) // must not panic
	ctx := ContextWithTrace(context.Background(), nil, nil)
	if TraceID(ctx) != "" {
		t.Fatal("nil trace produced an ID")
	}
	ctx2, sp := StartSpan(ctx, "y")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without a trace should no-op")
	}
	sp.End(nil)
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot non-nil")
	}
}
