package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// ValidateExposition parses a Prometheus text-format (0.0.4) payload and
// checks it structurally: every sample belongs to a declared family, TYPE
// lines precede their samples, values parse, and each histogram carries the
// mandatory +Inf bucket plus _sum and _count series. It returns the family
// name → type map so callers can assert coverage. This is the shared
// checker behind the golden exposition test and cmd/metricscheck — the CI
// scrape validator — so both fail on the same malformations.
func ValidateExposition(data []byte) (map[string]string, error) {
	families := make(map[string]string)
	histSeries := make(map[string]map[string]bool) // histogram family → seen suffix/le markers
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: bad HELP metric name %q", lineNo, name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := families[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, name)
			}
			families[name] = typ
			if typ == "histogram" {
				histSeries[name] = make(map[string]bool)
			}
		case strings.HasPrefix(line, "#"):
			// Free-form comment: legal, ignored.
		default:
			name, labels, value, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			fam, suffix, err := sampleFamily(name, families)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			_ = value
			if h, isHist := histSeries[fam]; isHist {
				h[suffix] = true
				if suffix == "_bucket" && strings.Contains(labels, `le="+Inf"`) {
					h["+Inf"] = true
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for fam, seen := range histSeries {
		// A histogram vec with no children legally exposes only HELP/TYPE;
		// once any series appears the full triplet (and +Inf bucket) must.
		if len(seen) == 0 {
			continue
		}
		for _, want := range []string{"_bucket", "_sum", "_count", "+Inf"} {
			if !seen[want] {
				return nil, fmt.Errorf("histogram %s missing %s series", fam, want)
			}
		}
	}
	return families, nil
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func validMetricName(name string) bool { return metricNameRe.MatchString(name) }

// parseSample splits one sample line into metric name, raw label block (the
// text between the braces, "" when absent) and the parsed value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("bad metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		// The label block can embed escaped quotes; scan to the closing
		// brace outside a quoted string.
		end := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch rest[i] {
			case '\\':
				if inQuote {
					i++
				}
			case '"':
				inQuote = !inQuote
			case '}':
				if !inQuote {
					end = i
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, rest = rest[1:end], rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("malformed sample value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

// sampleFamily resolves which declared family a sample belongs to,
// accepting the histogram _bucket/_sum/_count suffixes.
func sampleFamily(name string, families map[string]string) (fam, suffix string, err error) {
	if typ, ok := families[name]; ok {
		if typ == "histogram" {
			return "", "", fmt.Errorf("histogram family %q sampled without suffix", name)
		}
		return name, "", nil
	}
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, s)
		if base != name && families[base] == "histogram" {
			return base, s, nil
		}
	}
	return "", "", fmt.Errorf("sample %q has no preceding TYPE declaration", name)
}
