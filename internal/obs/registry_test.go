package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", "Total ops.").Add(3)
	r.CounterVec("route_total", "Routed requests.", "path").With("/admin/add").Inc()
	r.CounterVec("route_total", "ignored duplicate help", "path").With("/admin/add").Inc()
	r.Gauge("depth", "Queue depth.").Set(2.5)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("gen", "Generation.", func() float64 { return 7 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP ops_total Total ops.\n# TYPE ops_total counter\nops_total 3\n",
		"# TYPE route_total counter\n" + `route_total{path="/admin/add"} 2` + "\n",
		"# TYPE depth gauge\ndepth 2.5\n",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55\n",
		"lat_seconds_count 3\n",
		"# TYPE gen gauge\ngen 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", "h").Inc()
	r.Counter("a", "h").Add(2)
	r.CounterVec("b", "h", "l").With("x").Inc()
	r.Gauge("c", "h").Set(1)
	r.Gauge("c", "h").Add(1)
	r.Histogram("d", "h", nil).Observe(1)
	r.HistogramVec("e", "h", nil, "l").With("x").Observe(1)
	r.GaugeFunc("f", "h", func() float64 { return 1 })
	r.Collect("g", "h", TypeCounter, nil, nil)
	r.WritePrometheus(&strings.Builder{})
	if v := r.Counter("a", "h").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 404 {
		t.Fatalf("nil registry handler status = %d", rec.Code)
	}
}

func TestRegistryHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "h").Inc()
				r.CounterVec("v_total", "h", "l").With("x").Inc()
				r.Histogram("h_seconds", "h", nil).Observe(0.001)
				r.Gauge("g", "h").Add(1)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c_total", "h").Value(); v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
	if v := r.Gauge("g", "h").Value(); v != 8000 {
		t.Fatalf("gauge = %g, want 8000", v)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "h", "l").With(`a"b\c` + "\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if want := `esc_total{l="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("want %q in %q", want, b.String())
	}
}
