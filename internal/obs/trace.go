package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries the trace ID across shard HTTP hops.
const TraceHeader = "X-Trace-Id"

// Span is one timed operation inside a trace. Parent is the ID of the
// enclosing span (0 for the root). Spans are recorded into the trace when
// End is called.
type Span struct {
	trace  *Trace
	ID     int64  `json:"id"`
	Parent int64  `json:"parent"`
	Name   string `json:"name"`
	start  time.Time
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
	Err    string        `json:"err,omitempty"`
}

// End closes the span, recording its duration and (if non-nil) the error.
// Safe on a nil span.
func (s *Span) End(err error) {
	if s == nil || s.trace == nil {
		return
	}
	s.Dur = time.Since(s.start)
	if err != nil {
		s.Err = err.Error()
	}
	s.trace.record(s)
}

// Trace is a set of spans sharing one trace ID. A trace may span processes
// — each process records its own spans and the tracer merges dumps by ID.
type Trace struct {
	tracer *Tracer
	ID     string `json:"id"`
	Name   string `json:"name"`
	Start  time.Time

	mu     sync.Mutex
	nextID int64
	spans  []Span
}

func (t *Trace) record(s *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, *s)
	t.mu.Unlock()
	// Every root span is an operation boundary (router and shard each open
	// one on the same trace), so each gets slow-op consideration.
	if s.Parent == 0 && t.tracer != nil {
		t.tracer.finish(t, s)
	}
}

// span starts a child span; parent 0 makes a root span.
func (t *Trace) span(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	id := atomic.AddInt64(&t.nextID, 1)
	return &Span{trace: t, ID: id, Parent: parent, Name: name, start: time.Now(), Start: time.Now()}
}

// TraceDump is the exported form of a finished (or in-flight) trace.
type TraceDump struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	Dur   float64   `json:"dur_seconds"`
	Spans []Span    `json:"spans"`
}

// Tracer mints traces, keeps a ring buffer of recent ones, and logs
// operations slower than Slow. A nil *Tracer is a valid no-op: StartTrace
// and JoinTrace return nils whose methods no-op.
type Tracer struct {
	// Slow, when > 0, logs any trace whose root span exceeds it.
	Slow time.Duration
	// Logf receives slow-op lines; defaults to log.Printf-style no-op when nil.
	Logf func(format string, args ...any)

	mu   sync.Mutex
	ring []*Trace
	next int
	byID map[string]*Trace
}

// NewTracer returns a tracer keeping the most recent capacity traces
// (default 64 when capacity ≤ 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{ring: make([]*Trace, capacity), byID: make(map[string]*Trace)}
}

// NewTraceID mints a random 16-hex-char trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace-rand-err"
	}
	return hex.EncodeToString(b[:])
}

// StartTrace begins a new trace with a fresh ID and returns it with its
// root span. Nil tracer → (nil, nil).
func (tr *Tracer) StartTrace(name string) (*Trace, *Span) {
	return tr.JoinTrace(NewTraceID(), name)
}

// JoinTrace attaches to the trace identified by id — in-process joins reuse
// the live trace so router and shard spans land in one dump; cross-process
// joins (id unseen) create a local trace under the same ID. Returns the
// trace and a root span named name. Nil tracer or empty id → (nil, nil).
func (tr *Tracer) JoinTrace(id, name string) (*Trace, *Span) {
	if tr == nil || id == "" {
		return nil, nil
	}
	tr.mu.Lock()
	t := tr.byID[id]
	if t == nil {
		t = &Trace{tracer: tr, ID: id, Name: name, Start: time.Now()}
		tr.byID[id] = t
		if old := tr.ring[tr.next]; old != nil {
			delete(tr.byID, old.ID)
		}
		tr.ring[tr.next] = t
		tr.next = (tr.next + 1) % len(tr.ring)
	}
	tr.mu.Unlock()
	return t, t.span(name, 0)
}

// finish runs when a trace's first root span ends: slow-op logging.
func (tr *Tracer) finish(t *Trace, root *Span) {
	if tr.Slow > 0 && root.Dur >= tr.Slow && tr.Logf != nil {
		tr.Logf("obs: slow op trace=%s name=%s dur=%s err=%q", t.ID, root.Name, root.Dur, root.Err)
	}
}

// Snapshot returns the ring's traces, most recent first.
func (tr *Tracer) Snapshot() []TraceDump {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	var traces []*Trace
	for i := 1; i <= len(tr.ring); i++ {
		if t := tr.ring[(tr.next-i+len(tr.ring))%len(tr.ring)]; t != nil {
			traces = append(traces, t)
		}
	}
	tr.mu.Unlock()
	dumps := make([]TraceDump, 0, len(traces))
	for _, t := range traces {
		t.mu.Lock()
		d := TraceDump{ID: t.ID, Name: t.Name, Start: t.Start, Spans: append([]Span(nil), t.spans...)}
		t.mu.Unlock()
		for _, s := range d.Spans {
			if s.Parent == 0 && s.Dur.Seconds() > d.Dur {
				d.Dur = s.Dur.Seconds()
			}
		}
		dumps = append(dumps, d)
	}
	return dumps
}

// ---------------------------------------------------------------------------
// Context plumbing

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// ContextWithTrace attaches a trace and its current span to ctx.
func ContextWithTrace(ctx context.Context, t *Trace, s *Span) context.Context {
	if t == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, traceKey, t)
	if s != nil {
		ctx = context.WithValue(ctx, spanKey, s)
	}
	return ctx
}

// TraceFromContext returns the trace attached to ctx, if any.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// TraceID returns the trace ID attached to ctx ("" if none) — what goes in
// the TraceHeader of outbound hops.
func TraceID(ctx context.Context) string {
	if t := TraceFromContext(ctx); t != nil {
		return t.ID
	}
	return ""
}

// StartSpan opens a child span under ctx's current span and returns a ctx
// carrying it. With no trace in ctx it returns (ctx, nil) and the nil span
// no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TraceFromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent int64
	if p, _ := ctx.Value(spanKey).(*Span); p != nil {
		parent = p.ID
	}
	s := t.span(name, parent)
	return context.WithValue(ctx, spanKey, s), s
}
