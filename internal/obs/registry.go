// Package obs is the cluster's zero-dependency observability plane: a
// metrics registry with Prometheus text exposition (registry.go) and a
// lightweight request tracer (trace.go). Every instrumentation handle is
// nil-safe — a nil *Registry hands out nil counters/gauges/histograms whose
// methods are no-ops — so disabling observability is "pass nil", with no
// conditional wiring at the call sites and no measurable cost on hot paths.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric family types, as exposed on the # TYPE line.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// DefBuckets are the default latency histogram buckets, in seconds: wide
// enough to cover a sub-millisecond MemStore put and a multi-second lease
// wait in the same family.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Families are exposed in registration order; looking a
// name up again returns the existing family, so independent components can
// share one family without coordination. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric family: either a set of static instruments
// (keyed by joined label values) or a collector callback sampled at
// exposition time.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64

	mu      sync.Mutex
	order   []string
	metrics map[string]any

	collect func(emit func(labelValues []string, v float64))
}

// labelKey joins label values into the family map key.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// familyFor returns (creating if needed) the named family. Looking the
// name up again returns the existing family regardless of the other
// arguments — the first registration pins help/type/labels so the
// exposition stays consistent.
func (r *Registry) familyFor(name, help, typ string, labels []string, buckets []float64) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.byName[name]; f != nil {
		return f
	}
	if typ == TypeHistogram && len(buckets) == 0 {
		buckets = DefBuckets
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		metrics: make(map[string]any),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// instrument returns (creating if needed) the family's instrument for the
// given label values.
func (f *family) instrument(values []string, mk func() any) any {
	if f == nil {
		return nil
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.metrics[key]; ok {
		return m
	}
	m := mk()
	f.metrics[key] = m
	f.order = append(f.order, key)
	return m
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing integer. All methods are no-ops on
// a nil receiver.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be ≥ 0 for the exposition to stay a valid counter).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the label-less counter named name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.familyFor(name, help, TypeCounter, nil, nil)
	if f == nil {
		return nil
	}
	return f.instrument(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec returns the counter family named name with the given label
// names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.familyFor(name, help, TypeCounter, labels, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	m := v.f.instrument(values, func() any { return &Counter{} })
	if m == nil {
		return nil
	}
	return m.(*Counter)
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a float64 that can go up and down. All methods are no-ops on a
// nil receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge returns the label-less gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.familyFor(name, help, TypeGauge, nil, nil)
	if f == nil {
		return nil
	}
	return f.instrument(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is sampled by fn at exposition
// time — for values that already live elsewhere (queue depths, generation
// numbers) and should not be mirrored on every change.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.Collect(name, help, TypeGauge, nil, func(emit func([]string, float64)) {
		emit(nil, fn())
	})
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram counts observations into fixed cumulative buckets. All methods
// are no-ops on a nil receiver.
type Histogram struct {
	buckets []float64      // upper bounds, ascending
	counts  []atomic.Int64 // len(buckets)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Histogram returns the label-less histogram named name. buckets may be nil
// (DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.familyFor(name, help, TypeHistogram, nil, buckets)
	if f == nil {
		return nil
	}
	return f.instrument(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec returns the histogram family named name. buckets may be nil
// (DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.familyFor(name, help, TypeHistogram, labels, buckets)
	if f == nil {
		return nil
	}
	return &HistogramVec{f: f}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	m := v.f.instrument(values, func() any { return newHistogram(v.f.buckets) })
	if m == nil {
		return nil
	}
	return m.(*Histogram)
}

// ---------------------------------------------------------------------------
// Collectors

// Collect registers a family whose samples are produced by the collect
// callback at exposition time — the bridge for counters that already exist
// elsewhere (ibbe.Metrics) without double-counting. typ is TypeCounter or
// TypeGauge; collect receives an emit function taking label values (aligned
// with labels) and the sample value. collect must be safe for concurrent
// use; it runs on the scrape goroutine.
func (r *Registry) Collect(name, help, typ string, labels []string, collect func(emit func(labelValues []string, v float64))) {
	f := r.familyFor(name, help, typ, labels, nil)
	if f == nil {
		return
	}
	f.mu.Lock()
	f.collect = collect
	f.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Exposition

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// renderLabels renders {k="v",...} for the given names and values; extra
// appends pre-rendered pairs (the histogram le label).
func renderLabels(names, values []string, extra string) string {
	if len(values) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		name := "label"
		if i < len(names) {
			name = names[i]
		}
		fmt.Fprintf(&b, `%s="%s"`, name, escapeLabel(v))
	}
	if extra != "" {
		if len(values) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value (integers without an exponent).
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in text exposition format 0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		f.write(w)
	}
}

// splitKey undoes labelKey ("" → no labels).
func splitKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\xff")
}

func (f *family) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	f.mu.Lock()
	collect := f.collect
	order := append([]string(nil), f.order...)
	metrics := make(map[string]any, len(f.metrics))
	for k, m := range f.metrics {
		metrics[k] = m
	}
	f.mu.Unlock()
	if collect != nil {
		collect(func(values []string, v float64) {
			fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, values, ""), formatValue(v))
		})
		return
	}
	for _, key := range order {
		values := splitKey(key)
		switch m := metrics[key].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(f.labels, values, ""), m.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, values, ""), formatValue(m.Value()))
		case *Histogram:
			var cum int64
			for i, ub := range m.buckets {
				cum += m.counts[i].Load()
				le := fmt.Sprintf(`le="%s"`, formatValue(ub))
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(f.labels, values, le), cum)
			}
			cum += m.counts[len(m.buckets)].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(f.labels, values, `le="+Inf"`), cum)
			fmt.Fprintf(w, "%s_sum%s %g\n", f.name, renderLabels(f.labels, values, ""), math.Float64frombits(m.sumBits.Load()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(f.labels, values, ""), m.count.Load())
		}
	}
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "obs: no registry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
