package kdf

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"testing"
)

// RFC 5869 test case 1 (SHA-256).
func TestHKDFRFC5869Vector1(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt, _ := hex.DecodeString("000102030405060708090a0b0c")
	info, _ := hex.DecodeString("f0f1f2f3f4f5f6f7f8f9")
	wantPRK, _ := hex.DecodeString("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM, _ := hex.DecodeString("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := Extract(salt, ikm)
	if !bytes.Equal(prk, wantPRK) {
		t.Fatalf("PRK = %x, want %x", prk, wantPRK)
	}
	okm, err := Expand(prk, info, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x, want %x", okm, wantOKM)
	}
}

// RFC 5869 test case 3 (zero-length salt and info).
func TestHKDFRFC5869Vector3(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	wantOKM, _ := hex.DecodeString("8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	okm, err := Derive(ikm, nil, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x, want %x", okm, wantOKM)
	}
}

func TestExpandLengthLimits(t *testing.T) {
	prk := Extract(nil, []byte("x"))
	if _, err := Expand(prk, nil, 0); err == nil {
		t.Fatal("Expand accepted zero length")
	}
	if _, err := Expand(prk, nil, 255*sha256.Size+1); err == nil {
		t.Fatal("Expand accepted over-long output")
	}
	out, err := Expand(prk, nil, 255*sha256.Size)
	if err != nil || len(out) != 255*sha256.Size {
		t.Fatalf("max-length expand failed: %v", err)
	}
}

func TestDeriveKeyDeterministic(t *testing.T) {
	k1 := DeriveKey([]byte("secret"), []byte("salt"), []byte("info"))
	k2 := DeriveKey([]byte("secret"), []byte("salt"), []byte("info"))
	if k1 != k2 {
		t.Fatal("DeriveKey not deterministic")
	}
	k3 := DeriveKey([]byte("secret"), []byte("salt"), []byte("other"))
	if k1 == k3 {
		t.Fatal("info does not separate derived keys")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	key, err := RandomKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the group key payload")
	aad := []byte("group-42/partition-3")
	box, err := Seal(key, msg, aad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(box) != len(msg)+Overhead {
		t.Fatalf("sealed size %d, want %d", len(box), len(msg)+Overhead)
	}
	out, err := Open(key, box, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, msg) {
		t.Fatal("round trip changed message")
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	k1, _ := RandomKey(nil)
	k2, _ := RandomKey(nil)
	box, _ := Seal(k1, []byte("msg"), nil, nil)
	if _, err := Open(k2, box, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("wrong key: got %v, want ErrDecrypt", err)
	}
}

func TestOpenRejectsWrongAAD(t *testing.T) {
	key, _ := RandomKey(nil)
	box, _ := Seal(key, []byte("msg"), []byte("aad-a"), nil)
	if _, err := Open(key, box, []byte("aad-b")); !errors.Is(err, ErrDecrypt) {
		t.Fatal("AAD mismatch accepted")
	}
}

func TestOpenRejectsTamperedCiphertext(t *testing.T) {
	key, _ := RandomKey(nil)
	box, _ := Seal(key, []byte("msg"), nil, nil)
	box[len(box)-1] ^= 0x01
	if _, err := Open(key, box, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatal("tampered ciphertext accepted")
	}
}

func TestOpenRejectsShortInput(t *testing.T) {
	key, _ := RandomKey(nil)
	if _, err := Open(key, make([]byte, Overhead-1), nil); !errors.Is(err, ErrShortCiphertext) {
		t.Fatal("short ciphertext accepted")
	}
}

func TestSealNoncesVary(t *testing.T) {
	key, _ := RandomKey(nil)
	b1, _ := Seal(key, []byte("m"), nil, nil)
	b2, _ := Seal(key, []byte("m"), nil, nil)
	if bytes.Equal(b1[:NonceSize], b2[:NonceSize]) {
		t.Fatal("nonce reuse across seals")
	}
}

func TestRandomKeyVaries(t *testing.T) {
	k1, _ := RandomKey(nil)
	k2, _ := RandomKey(nil)
	if k1 == k2 {
		t.Fatal("RandomKey returned identical keys")
	}
}

func TestSealEmptyPlaintext(t *testing.T) {
	key, _ := RandomKey(nil)
	box, err := Seal(key, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Open(key, box, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty plaintext round trip failed: %v", err)
	}
}
