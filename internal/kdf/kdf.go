// Package kdf provides the symmetric-crypto glue the system needs: an
// HKDF-SHA256 implementation (the standard library has none) and AES-256-GCM
// sealing helpers with a uniform wire format.
//
// The paper's construction wraps the group key gk under partition broadcast
// keys with AES-256 (using Intel's SGX-SSL port); here the same wrapping is
// done with the stdlib cipher suite.
package kdf

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// Errors returned by the package.
var (
	// ErrDecrypt reports an authentication failure while opening a sealed box.
	ErrDecrypt = errors.New("kdf: message authentication failed")
	// ErrShortCiphertext reports a ciphertext shorter than nonce+tag.
	ErrShortCiphertext = errors.New("kdf: ciphertext too short")
)

// KeySize is the symmetric key size in bytes (AES-256, the paper's "maximal
// security level").
const KeySize = 32

// NonceSize is the GCM nonce size in bytes.
const NonceSize = 12

// Overhead is the sealing expansion: nonce plus GCM tag. A sealed 32-byte
// group key occupies 32 + Overhead bytes, the yᵢ term of the paper's
// per-partition metadata.
const Overhead = NonceSize + 16

// Extract implements HKDF-Extract(salt, ikm) with HMAC-SHA256.
func Extract(salt, ikm []byte) []byte {
	if len(salt) == 0 {
		salt = make([]byte, sha256.Size)
	}
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// Expand implements HKDF-Expand(prk, info, length) with HMAC-SHA256.
// Length must not exceed 255 hash blocks (8160 bytes).
func Expand(prk, info []byte, length int) ([]byte, error) {
	if length <= 0 || length > 255*sha256.Size {
		return nil, fmt.Errorf("kdf: invalid expand length %d", length)
	}
	var (
		out  = make([]byte, 0, length)
		prev []byte
		ctr  byte
	)
	for len(out) < length {
		ctr++
		mac := hmac.New(sha256.New, prk)
		mac.Write(prev)
		mac.Write(info)
		mac.Write([]byte{ctr})
		prev = mac.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length], nil
}

// Derive is the common HKDF(salt, ikm, info) → length composition.
func Derive(ikm, salt, info []byte, length int) ([]byte, error) {
	return Expand(Extract(salt, ikm), info, length)
}

// DeriveKey derives a KeySize-byte key; it never fails for valid inputs.
func DeriveKey(ikm, salt, info []byte) [KeySize]byte {
	var out [KeySize]byte
	k, err := Derive(ikm, salt, info, KeySize)
	if err != nil {
		// Unreachable: KeySize is a valid expand length.
		panic("kdf: internal derive failure: " + err.Error())
	}
	copy(out[:], k)
	return out
}

// Seal encrypts and authenticates plaintext under key with AES-256-GCM,
// binding the optional associated data. Output layout: nonce ∥ ciphertext.
func Seal(key [KeySize]byte, plaintext, aad []byte, rng io.Reader) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, NonceSize)
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("kdf: drawing nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, plaintext, aad), nil
}

// Open reverses Seal, verifying the tag and associated data.
func Open(key [KeySize]byte, box, aad []byte) ([]byte, error) {
	if len(box) < Overhead {
		return nil, ErrShortCiphertext
	}
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	pt, err := aead.Open(nil, box[:NonceSize], box[NonceSize:], aad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// RandomKey draws a fresh symmetric key (the group key gk of the paper).
func RandomKey(rng io.Reader) ([KeySize]byte, error) {
	var k [KeySize]byte
	if rng == nil {
		rng = rand.Reader
	}
	if _, err := io.ReadFull(rng, k[:]); err != nil {
		return k, fmt.Errorf("kdf: drawing key: %w", err)
	}
	return k, nil
}

func newGCM(key [KeySize]byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("kdf: cipher init: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("kdf: GCM init: %w", err)
	}
	return aead, nil
}
