// Package admin implements the administrator side of the end-to-end system
// (Fig. 5): it drives the core.Manager (which in turn calls the enclave)
// and pushes the resulting partition records to the cloud store with PUT,
// keeping a local cache so membership operations never need to read back
// from the cloud (§IV-C: administrators "can locally cache it and thus
// bypass the cost of accessing the cloud for metadata structures").
package admin

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/ibbesgx/ibbesgx/internal/core"
	"github.com/ibbesgx/ibbesgx/internal/storage"
)

// Admin binds a manager to a cloud store. Operations are safe for
// concurrent use (the manager serialises, and the store is concurrent).
type Admin struct {
	// Name identifies this administrator in the certified operation log.
	Name string

	mgr   *core.Manager
	store storage.Store
	// log, when non-nil, certifies every membership operation (§VIII
	// future work; see core.OpLog).
	log *core.OpLog
}

// New creates an administrator frontend.
func New(name string, mgr *core.Manager, store storage.Store, log *core.OpLog) *Admin {
	return &Admin{Name: name, mgr: mgr, store: store, log: log}
}

// Manager exposes the underlying manager (e.g. for metadata accounting).
func (a *Admin) Manager() *core.Manager { return a.mgr }

// CreateGroup runs Algorithm 1 and publishes all partition records.
func (a *Admin) CreateGroup(ctx context.Context, group string, members []string) error {
	up, err := a.mgr.CreateGroup(group, members)
	if err != nil {
		return err
	}
	if err := a.apply(ctx, up); err != nil {
		return err
	}
	if err := a.updateCatalog(ctx, group); err != nil {
		return err
	}
	return a.certify(group, core.OpCreateGroup, "")
}

// AddUser runs Algorithm 2 and publishes the affected partition record.
func (a *Admin) AddUser(ctx context.Context, group, user string) error {
	up, err := a.mgr.AddUser(group, user)
	if err != nil {
		return err
	}
	if err := a.apply(ctx, up); err != nil {
		return err
	}
	return a.certify(group, core.OpAddUser, user)
}

// AddUsers runs the batched form of Algorithm 2 — one ciphertext extension
// per touched partition for the whole batch — and publishes the affected
// records. Each membership change is still certified individually, so the
// operation log is identical to looping AddUser.
func (a *Admin) AddUsers(ctx context.Context, group string, users []string) error {
	up, err := a.mgr.AddUsers(group, users)
	if err != nil {
		return err
	}
	if err := a.apply(ctx, up); err != nil {
		return err
	}
	for _, u := range users {
		if err := a.certify(group, core.OpAddUser, u); err != nil {
			return err
		}
	}
	return nil
}

// RemoveUser runs Algorithm 3 (and possibly a re-partition) and publishes
// every affected record.
func (a *Admin) RemoveUser(ctx context.Context, group, user string) error {
	up, err := a.mgr.RemoveUser(group, user)
	if err != nil {
		return err
	}
	if err := a.apply(ctx, up); err != nil {
		return err
	}
	return a.certify(group, core.OpRemoveUser, user)
}

// RemoveUsers runs the batched form of Algorithm 3 — one fresh group key
// and at most one re-key pass per remaining partition for the whole batch —
// and publishes every affected record.
func (a *Admin) RemoveUsers(ctx context.Context, group string, users []string) error {
	up, err := a.mgr.RemoveUsers(group, users)
	if err != nil {
		return err
	}
	if err := a.apply(ctx, up); err != nil {
		return err
	}
	for _, u := range users {
		if err := a.certify(group, core.OpRemoveUser, u); err != nil {
			return err
		}
	}
	return nil
}

// RekeyGroup rotates the group key and republishes all records.
func (a *Admin) RekeyGroup(ctx context.Context, group string) error {
	up, err := a.mgr.RekeyGroup(group)
	if err != nil {
		return err
	}
	if err := a.apply(ctx, up); err != nil {
		return err
	}
	return a.certify(group, core.OpRekey, "")
}

// Repartition forces a dense re-layout of a group.
func (a *Admin) Repartition(ctx context.Context, group string) error {
	up, err := a.mgr.Repartition(group)
	if err != nil {
		return err
	}
	if err := a.apply(ctx, up); err != nil {
		return err
	}
	return a.certify(group, core.OpRepartition, "")
}

// Reserved object names inside a group directory (never partition records;
// clients skip names with this prefix).
const (
	reservedPrefix = "_"
	// sealedGKObject stores the enclave-sealed group key next to the
	// partition records — Algorithm 1 line 7's "Store: (1) sealed gk". It
	// is opaque to the cloud and to curious administrators.
	sealedGKObject = "_sealed_gk"
	// catalogDir / catalogObject track the set of groups for RestoreAll.
	catalogDir    = "_system"
	catalogObject = "groups"
)

// apply pushes an update to the cloud: deletes first (so clients never see
// a stale partition alongside its replacement), then puts, then the current
// sealed group key.
func (a *Admin) apply(ctx context.Context, up *core.Update) error {
	scheme := a.mgr.Scheme()
	for _, id := range up.Delete {
		if err := a.store.Delete(ctx, up.Group, id); err != nil {
			return fmt.Errorf("admin: deleting %s/%s: %w", up.Group, id, err)
		}
	}
	for id, rec := range up.Put {
		blob, err := rec.Marshal(scheme)
		if err != nil {
			return err
		}
		if err := a.store.Put(ctx, up.Group, id, blob); err != nil {
			return fmt.Errorf("admin: putting %s/%s: %w", up.Group, id, err)
		}
	}
	sealed, err := a.mgr.SealedGroupKey(up.Group)
	if err != nil {
		return err
	}
	if err := a.store.Put(ctx, up.Group, sealedGKObject, sealed); err != nil {
		return fmt.Errorf("admin: putting sealed group key: %w", err)
	}
	return nil
}

// updateCatalog records the group name in the cloud catalog (idempotent).
func (a *Admin) updateCatalog(ctx context.Context, group string) error {
	groups, err := a.readCatalog(ctx)
	if err != nil {
		return err
	}
	for _, g := range groups {
		if g == group {
			return nil
		}
	}
	groups = append(groups, group)
	sort.Strings(groups)
	blob, err := json.Marshal(groups)
	if err != nil {
		return err
	}
	return a.store.Put(ctx, catalogDir, catalogObject, blob)
}

// readCatalog returns the group names recorded in the cloud catalog.
func (a *Admin) readCatalog(ctx context.Context) ([]string, error) {
	blob, err := a.store.Get(ctx, catalogDir, catalogObject)
	if errors.Is(err, storage.ErrNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var groups []string
	if err := json.Unmarshal(blob, &groups); err != nil {
		return nil, fmt.Errorf("admin: corrupt catalog: %w", err)
	}
	return groups, nil
}

// RestoreGroup rebuilds the manager's state for one group from the cloud:
// every partition record plus the sealed group key. Use after an
// administrator restart (the enclave must hold the same master secret, via
// EcallRestore on the same platform).
func (a *Admin) RestoreGroup(ctx context.Context, group string) error {
	names, err := a.store.List(ctx, group)
	if err != nil {
		return fmt.Errorf("admin: listing %s: %w", group, err)
	}
	scheme := a.mgr.Scheme()
	recs := make(map[string]*core.PartitionRecord)
	var sealedGK []byte
	for _, name := range names {
		blob, err := a.store.Get(ctx, group, name)
		if err != nil {
			return err
		}
		if name == sealedGKObject {
			sealedGK = blob
			continue
		}
		if strings.HasPrefix(name, reservedPrefix) {
			continue
		}
		rec, err := core.UnmarshalRecord(scheme, blob)
		if err != nil {
			return fmt.Errorf("admin: record %s/%s: %w", group, name, err)
		}
		recs[name] = rec
	}
	if sealedGK == nil {
		return fmt.Errorf("admin: group %s has no sealed group key in the cloud", group)
	}
	return a.mgr.RestoreGroup(group, recs, sealedGK)
}

// RestoreAll restores every group recorded in the cloud catalog.
func (a *Admin) RestoreAll(ctx context.Context) error {
	groups, err := a.readCatalog(ctx)
	if err != nil {
		return err
	}
	for _, g := range groups {
		if err := a.RestoreGroup(ctx, g); err != nil {
			return err
		}
	}
	return nil
}

// certify appends to the operation log when one is configured.
func (a *Admin) certify(group string, kind core.OpKind, user string) error {
	if a.log == nil {
		return nil
	}
	_, err := a.log.Append(a.Name, group, kind, user)
	return err
}
