// Package admin implements the administrator side of the end-to-end system
// (Fig. 5): it drives the core.Manager (which in turn calls the enclave)
// and pushes the resulting partition records to the cloud store with PUT,
// keeping a local cache so membership operations never need to read back
// from the cloud (§IV-C: administrators "can locally cache it and thus
// bypass the cost of accessing the cloud for metadata structures").
package admin

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/ibbesgx/ibbesgx/internal/core"
	"github.com/ibbesgx/ibbesgx/internal/partition"
	"github.com/ibbesgx/ibbesgx/internal/storage"
)

// ErrNoSealedKey reports a group directory without a sealed group key — an
// interrupted creation; the group is not restorable.
var ErrNoSealedKey = errors.New("admin: group has no sealed group key in the cloud")

// Admin binds a manager to a cloud store. Operations are safe for
// concurrent use (the manager serialises, and the store is concurrent).
type Admin struct {
	// Name identifies this administrator in the certified operation log.
	Name string

	mgr   *core.Manager
	store storage.Store
	// log, when non-nil, certifies every membership operation (§VIII
	// future work; see core.OpLog).
	log *core.OpLog

	// cas switches the apply path to optimistic concurrency (PutIf): every
	// record write is conditional on the group directory version this admin
	// last observed, so two administrators racing the same group cannot
	// interleave records from different group keys. See EnableCAS.
	cas bool
	// fence, when set, supplies the cluster membership epoch stamped on
	// every conditional write (storage.PutFenced): the store rejects writes
	// from an admin operating under a superseded membership with ErrFenced —
	// terminal, never retried. See SetFence.
	fence func() uint64
	// verMu guards dirVer, the per-group directory versions this admin's
	// cached state corresponds to. Entries are set by RestoreGroup and
	// advanced only by this admin's own writes — a conditional write against
	// the tracked version fails exactly when someone else wrote in between.
	verMu  sync.Mutex
	dirVer map[string]uint64

	// opMu guards opLocks, one mutex per group serialising op()+apply in
	// mutate. The manager serialises the *computation* of concurrent
	// operations on one group, but without this lock their *applies* could
	// invert: the op computed first (whose records don't yet include the
	// second op's change) could publish last and silently overwrite the
	// second op's records. Lock objects are never removed — a concurrent
	// holder must keep observing the same mutex — and grow only with the
	// number of distinct group names this admin ever touched.
	opMu    sync.Mutex
	opLocks map[string]*sync.Mutex
}

// New creates an administrator frontend.
func New(name string, mgr *core.Manager, store storage.Store, log *core.OpLog) *Admin {
	return &Admin{
		Name:    name,
		mgr:     mgr,
		store:   store,
		log:     log,
		dirVer:  make(map[string]uint64),
		opLocks: make(map[string]*sync.Mutex),
	}
}

// groupOpLock returns the mutex serialising this admin's operations on one
// group end to end (compute + publish).
func (a *Admin) groupOpLock(group string) *sync.Mutex {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	l := a.opLocks[group]
	if l == nil {
		l = &sync.Mutex{}
		a.opLocks[group] = l
	}
	return l
}

// EnableCAS switches every subsequent apply to compare-and-swap writes with
// bounded refresh-and-retry: on storage.ErrVersionConflict the group's local
// state is dropped, rebuilt from the cloud (absorbing the concurrent
// winner's changes) and the operation re-run. Multi-administrator
// deployments (internal/cluster) must enable this; a single-admin
// deployment does not need it.
func (a *Admin) EnableCAS() { a.cas = true }

// SetFence installs the epoch provider fencing this admin's conditional
// writes — in a cluster, the shard's current membership epoch. Must be set
// before the admin serves concurrent operations. A provider returning 0
// disables fencing for that write (plain PutIf).
func (a *Admin) SetFence(epoch func() uint64) { a.fence = epoch }

// condPut issues one conditional write, fenced by the current membership
// epoch when a fence is installed.
func (a *Admin) condPut(ctx context.Context, dir, name string, data []byte, ifVersion uint64) error {
	if a.fence != nil {
		if e := a.fence(); e > 0 {
			return a.store.PutFenced(ctx, dir, name, data, ifVersion, e)
		}
	}
	return a.store.PutIf(ctx, dir, name, data, ifVersion)
}

// LockGroup acquires the per-group operation lock and returns its unlock.
// The cluster layer uses it to flush in-flight operations before handing a
// group to another shard: once LockGroup returns, no operation on the group
// is mid-apply on this admin.
func (a *Admin) LockGroup(group string) func() {
	l := a.groupOpLock(group)
	l.Lock()
	return l.Unlock
}

// casAttempts bounds the refresh-and-retry loop: a persistent conflict
// (e.g. an ownership race that keeps losing) aborts cleanly instead of
// spinning.
const casAttempts = 4

// mutate runs one membership operation against the manager and applies its
// update. Under CAS, a version conflict means another administrator wrote
// the group since this admin last synchronised: the local state is rebuilt
// from the cloud and the operation retried, serialising the two admins.
// Nothing was written when the conflict fired on the first conditional put,
// so the losing operation either re-applies cleanly on top of the winner's
// state or aborts with the manager's own error (e.g. the user it wanted to
// add already exists now). A CAS apply that fails for good — retries
// exhausted or a non-conflict storage error — leaves the group DROPPED from
// the local cache (the cloud holds the authoritative records; the caller
// restores before the next operation), never a silently divergent cache.
func (a *Admin) mutate(ctx context.Context, group string, op func() (*core.Update, error)) error {
	l := a.groupOpLock(group)
	l.Lock()
	defer l.Unlock()
	for attempt := 0; ; attempt++ {
		up, err := op()
		if err != nil {
			return err
		}
		err = a.apply(ctx, up)
		if err == nil {
			return nil
		}
		if !a.cas {
			return err
		}
		a.DropGroup(group)
		if !errors.Is(err, storage.ErrVersionConflict) || attempt >= casAttempts-1 {
			return err
		}
		if rerr := a.restoreForRetry(ctx, group); rerr != nil {
			return errors.Join(err, rerr)
		}
	}
}

// restoreForRetry rebuilds a group from the cloud for a CAS retry,
// tolerating the brief window where the winning administrator is still
// mid-apply (a record can vanish between list and get) by re-reading a
// bounded number of times. A torn-but-readable snapshot is fine: its
// tracked version predates the winner's remaining writes, so the retried
// apply conflicts again instead of committing on top of it.
func (a *Admin) restoreForRetry(ctx context.Context, group string) error {
	var err error
	for i := 0; i < casAttempts; i++ {
		a.DropGroup(group)
		if err = a.RestoreGroup(ctx, group); err == nil {
			return nil
		}
	}
	return err
}

// prepareCreate pins the directory version a creation's conditional writes
// chain from: the version at which the directory was observed EMPTY. Without
// the pin, a create would base itself on whatever version the store reports
// and could overwrite a live group's records; with it, a directory that
// already holds objects aborts with ErrGroupExists, and two administrators
// racing to create the same group both chain from the same empty-state
// version, so the first record write arbitrates.
func (a *Admin) prepareCreate(ctx context.Context, group string) error {
	v0, err := a.store.Version(ctx, group)
	if err != nil {
		return err
	}
	names, err := a.store.List(ctx, group)
	if err != nil && !errors.Is(err, storage.ErrNotFound) {
		return err
	}
	if len(names) > 0 {
		return fmt.Errorf("%w: %s (records already in the cloud)", core.ErrGroupExists, group)
	}
	a.trackVersion(group, v0)
	return nil
}

func (a *Admin) trackVersion(group string, v uint64) {
	a.verMu.Lock()
	a.dirVer[group] = v
	a.verMu.Unlock()
}

func (a *Admin) forgetVersion(group string) {
	a.verMu.Lock()
	delete(a.dirVer, group)
	a.verMu.Unlock()
}

// baseVersion returns the directory version the next conditional write must
// expect: the tracked one where present, else the store's current version
// (first write to a group this admin created rather than restored).
func (a *Admin) baseVersion(ctx context.Context, group string) (uint64, error) {
	a.verMu.Lock()
	v, ok := a.dirVer[group]
	a.verMu.Unlock()
	if ok {
		return v, nil
	}
	return a.store.Version(ctx, group)
}

// Manager exposes the underlying manager (e.g. for metadata accounting).
func (a *Admin) Manager() *core.Manager { return a.mgr }

// CreateGroup runs Algorithm 1 and publishes all partition records. Under
// CAS, a concurrent creation of the same group by another administrator
// resolves to exactly one winner; the loser aborts with core.ErrGroupExists
// after absorbing the winner's records.
func (a *Admin) CreateGroup(ctx context.Context, group string, members []string) error {
	if a.cas {
		if err := a.prepareCreate(ctx, group); err != nil {
			return err
		}
	}
	err := a.mutate(ctx, group, func() (*core.Update, error) {
		return a.mgr.CreateGroup(group, members)
	})
	if err != nil {
		return err
	}
	// The creation's records are applied: the group's cache may page from
	// here on (creation itself is necessarily O(group) resident).
	a.enablePaging(group)
	if err := a.updateCatalog(ctx, group); err != nil {
		return err
	}
	return a.certify(group, core.OpCreateGroup, "")
}

// AddUser runs Algorithm 2 and publishes the affected partition record.
func (a *Admin) AddUser(ctx context.Context, group, user string) error {
	err := a.mutate(ctx, group, func() (*core.Update, error) {
		return a.mgr.AddUser(group, user)
	})
	if err != nil {
		return err
	}
	return a.certify(group, core.OpAddUser, user)
}

// AddUsers runs the batched form of Algorithm 2 — one ciphertext extension
// per touched partition for the whole batch — and publishes the affected
// records. Each membership change is still certified individually, so the
// operation log is identical to looping AddUser.
func (a *Admin) AddUsers(ctx context.Context, group string, users []string) error {
	err := a.mutate(ctx, group, func() (*core.Update, error) {
		return a.mgr.AddUsers(group, users)
	})
	if err != nil {
		return err
	}
	for _, u := range users {
		if err := a.certify(group, core.OpAddUser, u); err != nil {
			return err
		}
	}
	return nil
}

// RemoveUser runs Algorithm 3 (and possibly a re-partition) and publishes
// every affected record.
func (a *Admin) RemoveUser(ctx context.Context, group, user string) error {
	err := a.mutate(ctx, group, func() (*core.Update, error) {
		return a.mgr.RemoveUser(group, user)
	})
	if err != nil {
		return err
	}
	return a.certify(group, core.OpRemoveUser, user)
}

// RemoveUsers runs the batched form of Algorithm 3 — one fresh group key
// and at most one re-key pass per remaining partition for the whole batch —
// and publishes every affected record.
func (a *Admin) RemoveUsers(ctx context.Context, group string, users []string) error {
	err := a.mutate(ctx, group, func() (*core.Update, error) {
		return a.mgr.RemoveUsers(group, users)
	})
	if err != nil {
		return err
	}
	for _, u := range users {
		if err := a.certify(group, core.OpRemoveUser, u); err != nil {
			return err
		}
	}
	return nil
}

// RekeyGroup rotates the group key and republishes all records.
func (a *Admin) RekeyGroup(ctx context.Context, group string) error {
	err := a.mutate(ctx, group, func() (*core.Update, error) {
		return a.mgr.RekeyGroup(group)
	})
	if err != nil {
		return err
	}
	return a.certify(group, core.OpRekey, "")
}

// Repartition forces a dense re-layout of a group.
func (a *Admin) Repartition(ctx context.Context, group string) error {
	err := a.mutate(ctx, group, func() (*core.Update, error) {
		return a.mgr.Repartition(group)
	})
	if err != nil {
		return err
	}
	return a.certify(group, core.OpRepartition, "")
}

// Reserved object names inside a group directory (never partition records;
// clients skip names with this prefix).
const (
	reservedPrefix = "_"
	// sealedGKObject stores the enclave-sealed group key next to the
	// partition records — Algorithm 1 line 7's "Store: (1) sealed gk". It
	// is opaque to the cloud and to curious administrators.
	sealedGKObject = "_sealed_gk"
	// catalogDir / catalogObject track the set of groups for RestoreAll.
	catalogDir    = "_system"
	catalogObject = "groups"
	// memberIndexObject stores the group's compact member→partition index as
	// its own versioned object. Takeover restores read it (plus the sealed
	// key) instead of every partition record, so a restart serves a
	// million-user group after an O(index) read; the records hydrate lazily
	// through the page cache.
	memberIndexObject = "_member_index"
)

// apply pushes an update to the cloud. The unconditional path deletes first
// (so clients never see a stale partition alongside its replacement), then
// puts, then the current sealed group key; the CAS path (EnableCAS) runs
// applyCAS instead.
func (a *Admin) apply(ctx context.Context, up *core.Update) error {
	if a.cas {
		return a.applyCAS(ctx, up)
	}
	scheme := a.mgr.Scheme()
	for _, id := range up.Delete {
		if err := a.store.Delete(ctx, up.Group, id); err != nil {
			return fmt.Errorf("admin: deleting %s/%s: %w", up.Group, id, err)
		}
	}
	for id, rec := range up.Put {
		blob, err := rec.Marshal(scheme)
		if err != nil {
			return err
		}
		if err := a.store.Put(ctx, up.Group, id, blob); err != nil {
			return fmt.Errorf("admin: putting %s/%s: %w", up.Group, id, err)
		}
	}
	idxBlob, err := a.mgr.MarshalIndex(up.Group)
	if err != nil {
		return err
	}
	if err := a.store.Put(ctx, up.Group, memberIndexObject, idxBlob); err != nil {
		return fmt.Errorf("admin: putting member index: %w", err)
	}
	sealed, err := a.mgr.SealedGroupKey(up.Group)
	if err != nil {
		return err
	}
	if err := a.store.Put(ctx, up.Group, sealedGKObject, sealed); err != nil {
		return fmt.Errorf("admin: putting sealed group key: %w", err)
	}
	return nil
}

// applyCAS pushes an update with every write conditional on the directory
// version advancing exactly as this admin expects. The first conditional
// write is the race arbiter: if another administrator wrote the directory
// since this admin last synchronised, it fails with ErrVersionConflict
// before anything is written, and mutate refreshes + retries. Writes go
// records → deletes → sealed group key (prefixed by an extra sealed-key
// guard write when the update has deletes but no record writes): a
// conditional write always precedes the unconditional deletes, so a stale
// admin conflicts before destroying anything, and the sealed-key write
// comes LAST, so a peer restoring from any mid-apply snapshot read a
// version that at least one remaining conditional write still advances
// past — its own first conditional write then conflicts instead of
// committing on the torn snapshot.
func (a *Admin) applyCAS(ctx context.Context, up *core.Update) error {
	scheme := a.mgr.Scheme()
	v, err := a.baseVersion(ctx, up.Group)
	if err != nil {
		return err
	}
	// Any failure below invalidates the tracked version: it no longer
	// matches the directory, and the next mutate re-syncs through restore.
	fail := func(err error) error {
		a.forgetVersion(up.Group)
		return err
	}
	sealed, err := a.mgr.SealedGroupKey(up.Group)
	if err != nil {
		return fail(err)
	}
	ids := make([]string, 0, len(up.Put))
	for id := range up.Put {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(ids) == 0 && len(up.Delete) > 0 {
		// No record write to arbitrate on, but deletes are unconditional:
		// write the sealed key up front as the guard (it is written again
		// at the final version below), so a stale admin conflicts before
		// destroying any object.
		if err := a.condPut(ctx, up.Group, sealedGKObject, sealed, v); err != nil {
			return fail(fmt.Errorf("admin: putting sealed group key: %w", err))
		}
		v++
	}
	for _, id := range ids {
		blob, err := up.Put[id].Marshal(scheme)
		if err != nil {
			return fail(err)
		}
		if err := a.condPut(ctx, up.Group, id, blob, v); err != nil {
			return fail(fmt.Errorf("admin: putting %s/%s: %w", up.Group, id, err))
		}
		v++
	}
	for _, id := range up.Delete {
		err := a.store.Delete(ctx, up.Group, id)
		if errors.Is(err, storage.ErrNotFound) {
			continue // already gone (e.g. a prior interrupted apply); no bump
		}
		if err != nil {
			return fail(fmt.Errorf("admin: deleting %s/%s: %w", up.Group, id, err))
		}
		v++
	}
	// The member index precedes the sealed key so the key keeps its place as
	// the LAST write of every apply (the torn-snapshot arbiter above).
	idxBlob, err := a.mgr.MarshalIndex(up.Group)
	if err != nil {
		return fail(err)
	}
	if err := a.condPut(ctx, up.Group, memberIndexObject, idxBlob, v); err != nil {
		return fail(fmt.Errorf("admin: putting member index: %w", err))
	}
	v++
	if err := a.condPut(ctx, up.Group, sealedGKObject, sealed, v); err != nil {
		return fail(fmt.Errorf("admin: putting sealed group key: %w", err))
	}
	v++
	a.trackVersion(up.Group, v)
	return nil
}

// updateCatalog records the group name in the cloud catalog (idempotent).
// Under CAS the read-modify-write is a conditional put on the catalog
// directory version, so two administrators creating different groups at the
// same time cannot lose each other's catalog entries.
func (a *Admin) updateCatalog(ctx context.Context, group string) error {
	for attempt := 0; ; attempt++ {
		// Under CAS the version is read before the content: a writer
		// landing in between fails our conditional put instead of being
		// overwritten. The plain path skips the extra round-trip.
		var ver uint64
		if a.cas {
			v, err := a.store.Version(ctx, catalogDir)
			if err != nil {
				return err
			}
			ver = v
		}
		groups, err := a.readCatalog(ctx)
		if err != nil {
			return err
		}
		for _, g := range groups {
			if g == group {
				return nil
			}
		}
		groups = append(groups, group)
		sort.Strings(groups)
		blob, err := json.Marshal(groups)
		if err != nil {
			return err
		}
		if !a.cas {
			return a.store.Put(ctx, catalogDir, catalogObject, blob)
		}
		err = a.condPut(ctx, catalogDir, catalogObject, blob, ver)
		if err == nil || !errors.Is(err, storage.ErrVersionConflict) || attempt >= casAttempts-1 {
			return err
		}
	}
}

// readCatalog returns the group names recorded in the cloud catalog.
func (a *Admin) readCatalog(ctx context.Context) ([]string, error) {
	blob, err := a.store.Get(ctx, catalogDir, catalogObject)
	if errors.Is(err, storage.ErrNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var groups []string
	if err := json.Unmarshal(blob, &groups); err != nil {
		return nil, fmt.Errorf("admin: corrupt catalog: %w", err)
	}
	return groups, nil
}

// recordFetch returns the store-backed loader that rehydrates one evicted
// partition record. Hydrations happen lazily, long after whatever request
// installed the fetch, so it runs under a background context.
func (a *Admin) recordFetch(group string) core.RecordFetch {
	scheme := a.mgr.Scheme()
	return func(partitionID string) (*core.PartitionRecord, error) {
		blob, err := a.store.Get(context.Background(), group, partitionID)
		if err != nil {
			return nil, err
		}
		return core.UnmarshalRecord(scheme, blob)
	}
}

// enablePaging installs the store-backed page source for a group whose
// records are durably in the cloud, turning its page cache evictable. A
// group the manager no longer holds (concurrent drop) is a no-op.
func (a *Admin) enablePaging(group string) {
	_ = a.mgr.SetPageSource(group, a.recordFetch(group))
}

// RestoreGroup rebuilds the manager's state for one group from the cloud.
// The fast path reads only the member index and the sealed group key —
// O(index), not O(group) — and hands the manager a lazy record fetch;
// directories written before the index object existed fall back to reading
// every partition record. Use after an administrator restart (the enclave
// must hold the same master secret, via EcallRestore on the same platform).
func (a *Admin) RestoreGroup(ctx context.Context, group string) error {
	// The version is read before any content: if a writer lands during the
	// restore, the tracked version is stale and this admin's first
	// conditional write conflicts — triggering another restore — instead of
	// silently building on a torn snapshot.
	ver, err := a.store.Version(ctx, group)
	if err != nil {
		return err
	}
	idxBlob, err := a.store.Get(ctx, group, memberIndexObject)
	if err == nil {
		if err := a.restorePaged(ctx, group, idxBlob); err != nil {
			return err
		}
		a.trackVersion(group, ver)
		return nil
	}
	if !errors.Is(err, storage.ErrNotFound) {
		return err
	}
	names, err := a.store.List(ctx, group)
	if err != nil {
		return fmt.Errorf("admin: listing %s: %w", group, err)
	}
	scheme := a.mgr.Scheme()
	recs := make(map[string]*core.PartitionRecord)
	var sealedGK []byte
	for _, name := range names {
		blob, err := a.store.Get(ctx, group, name)
		if err != nil {
			return err
		}
		if name == sealedGKObject {
			sealedGK = blob
			continue
		}
		if strings.HasPrefix(name, reservedPrefix) {
			continue
		}
		rec, err := core.UnmarshalRecord(scheme, blob)
		if err != nil {
			return fmt.Errorf("admin: record %s/%s: %w", group, name, err)
		}
		recs[name] = rec
	}
	if sealedGK == nil {
		return fmt.Errorf("%w: %s", ErrNoSealedKey, group)
	}
	if err := a.mgr.RestoreGroup(group, recs, sealedGK); err != nil {
		return err
	}
	// Even the legacy path ends up paged: the records just restored are in
	// the cloud by definition, so the cache may evict and rehydrate them.
	a.enablePaging(group)
	a.trackVersion(group, ver)
	return nil
}

// restorePaged is the O(index) restore: decode the member index, read the
// sealed key, and register the group with a lazy page fetch — no partition
// record is read until an operation touches it.
func (a *Admin) restorePaged(ctx context.Context, group string, idxBlob []byte) error {
	idx, err := partition.UnmarshalIndex(idxBlob)
	if err != nil {
		return fmt.Errorf("admin: index %s/%s: %w", group, memberIndexObject, err)
	}
	sealedGK, err := a.store.Get(ctx, group, sealedGKObject)
	if errors.Is(err, storage.ErrNotFound) {
		return fmt.Errorf("%w: %s", ErrNoSealedKey, group)
	}
	if err != nil {
		return err
	}
	return a.mgr.RestoreGroupPaged(group, idx, sealedGK, a.recordFetch(group))
}

// DropGroup releases this admin's local state for a group (manager cache
// and tracked directory version) without touching the cloud — the hand-over
// half of moving a group to another administrator.
func (a *Admin) DropGroup(group string) {
	a.mgr.DropGroup(group)
	a.forgetVersion(group)
}

// Store exposes the cloud store this admin applies to (the cluster lease
// manager shares it).
func (a *Admin) Store() storage.Store { return a.store }

// RestoreAll restores every group recorded in the cloud catalog.
func (a *Admin) RestoreAll(ctx context.Context) error {
	groups, err := a.readCatalog(ctx)
	if err != nil {
		return err
	}
	for _, g := range groups {
		if err := a.RestoreGroup(ctx, g); err != nil {
			return err
		}
	}
	return nil
}

// certify appends to the operation log when one is configured.
func (a *Admin) certify(group string, kind core.OpKind, user string) error {
	if a.log == nil {
		return nil
	}
	_, err := a.log.Append(a.Name, group, kind, user)
	return err
}
