package admin

import "crypto/x509"

// parseDER parses a DER certificate in tests.
func parseDER(der []byte) (*x509.Certificate, error) {
	return x509.ParseCertificate(der)
}
