package admin

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/core"
)

func TestRestoreGroupAfterAdminRestart(t *testing.T) {
	s := newSys(t, 3)
	ctx := context.Background()
	members := users(7)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}
	if err := s.admin.RemoveUser(ctx, "g", members[2]); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh manager on the same enclave (the enclave keeps its
	// master secret; across process restarts EcallRestore reloads it).
	mgr2, err := core.NewManager(s.encl, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	admin2 := New("admin-2", mgr2, s.store, nil)
	if err := admin2.RestoreAll(ctx); err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}

	// The restored manager agrees with the original on membership.
	want, err := s.admin.Manager().Members("g")
	if err != nil {
		t.Fatal(err)
	}
	got, err := mgr2.Members("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("restored members = %d, want %d", len(got), len(want))
	}

	// The restored admin can continue operating the group: add a user to a
	// new partition (unsealing the restored group key) and remove one.
	if err := admin2.AddUser(ctx, "g", "post-restore@example.com"); err != nil {
		t.Fatalf("AddUser after restore: %v", err)
	}
	if err := admin2.RemoveUser(ctx, "g", members[0]); err != nil {
		t.Fatalf("RemoveUser after restore: %v", err)
	}

	// Clients still converge on one key for the continued group.
	cNew := s.clientFor(t, "post-restore@example.com", "g")
	cOld := s.clientFor(t, members[1], "g")
	gkNew, err := cNew.GroupKey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gkOld, err := cOld.GroupKey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gkNew != gkOld {
		t.Fatal("members disagree after restored-admin operations")
	}
}

func TestRestoreGroupRequiresSealedKey(t *testing.T) {
	s := newSys(t, 2)
	ctx := context.Background()
	if err := s.admin.CreateGroup(ctx, "g", users(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.store.Delete(ctx, "g", "_sealed_gk"); err != nil {
		t.Fatal(err)
	}
	mgr2, err := core.NewManager(s.encl, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	admin2 := New("admin-2", mgr2, s.store, nil)
	if err := admin2.RestoreGroup(ctx, "g"); err == nil {
		t.Fatal("restore without sealed key succeeded")
	}
}

func TestRestoreGroupRejectsCorruptRecord(t *testing.T) {
	s := newSys(t, 2)
	ctx := context.Background()
	if err := s.admin.CreateGroup(ctx, "g", users(2)); err != nil {
		t.Fatal(err)
	}
	names, _ := s.store.List(ctx, "g")
	for _, n := range names {
		if !strings.HasPrefix(n, "_") {
			if err := s.store.Put(ctx, "g", n, []byte("garbage")); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	mgr2, err := core.NewManager(s.encl, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	admin2 := New("admin-2", mgr2, s.store, nil)
	// The streaming restore reads only the index and the sealed key, so it
	// succeeds; the corruption surfaces the moment the record hydrates.
	if err := admin2.RestoreGroup(ctx, "g"); err != nil {
		t.Fatalf("streaming restore must not read records eagerly: %v", err)
	}
	if _, err := mgr2.Records("g"); err == nil {
		t.Fatal("corrupt record accepted during hydration")
	}
}

func TestRestoreAllEmptyCatalog(t *testing.T) {
	s := newSys(t, 2)
	if err := s.admin.RestoreAll(context.Background()); err != nil {
		t.Fatalf("RestoreAll on empty catalog: %v", err)
	}
}

func TestRestoreExistingGroupRejected(t *testing.T) {
	s := newSys(t, 2)
	ctx := context.Background()
	if err := s.admin.CreateGroup(ctx, "g", users(2)); err != nil {
		t.Fatal(err)
	}
	// Restoring into the same (still-populated) manager must fail.
	if err := s.admin.RestoreGroup(ctx, "g"); !errors.Is(err, core.ErrGroupExists) {
		t.Fatalf("restore over live group: %v", err)
	}
}

func TestCatalogAccumulatesGroups(t *testing.T) {
	s := newSys(t, 2)
	ctx := context.Background()
	for _, g := range []string{"beta", "alpha"} {
		if err := s.admin.CreateGroup(ctx, g, users(2)); err != nil {
			t.Fatal(err)
		}
	}
	groups, err := s.admin.readCatalog(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[0] != "alpha" || groups[1] != "beta" {
		t.Fatalf("catalog = %v", groups)
	}
	// Idempotence: re-adding the same group keeps the catalog stable.
	if err := s.admin.updateCatalog(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}
	groups2, _ := s.admin.readCatalog(ctx)
	if len(groups2) != 2 {
		t.Fatalf("catalog grew on duplicate: %v", groups2)
	}
}
