package admin

import (
	"encoding/json"
	"net/http"
)

// Error codes carried in the control-API envelope. Clients branch on these
// instead of parsing message strings; client.AdminAPI maps them to typed
// sentinel errors (ErrFencedEpoch, ErrNotOwner).
const (
	// CodeFencedEpoch: the serving process operated under a superseded
	// membership epoch and the store fenced its write. Refresh membership
	// from the store record and retry against the current owner.
	CodeFencedEpoch = "fenced_epoch"
	// CodeNotOwner: the addressed shard does not (or no longer does) own
	// the group's lease. Retry after the interval in Retry-After; a routing
	// gateway re-resolves the owner first.
	CodeNotOwner = "not_owner"
	// CodeConflict: the operation itself is invalid against current state
	// (duplicate user, unknown group, drain of the last member, …).
	// Retrying without changing the request will fail the same way.
	CodeConflict = "conflict"
	// CodeBadRequest: the request was malformed.
	CodeBadRequest = "bad_request"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// ErrorInfo is the error half of the envelope.
type ErrorInfo struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

// Envelope is the uniform JSON wrapper for the cluster-control API
// (/admin/cluster/v1/*) and for admin-operation errors: every response
// carries the serving process's membership epoch — so a client always
// learns how current its server was — a coarse status, and either a typed
// error or the endpoint-specific result.
type Envelope struct {
	Epoch  uint64          `json:"epoch"`
	Status string          `json:"status"` // "ok" | "error"
	Error  *ErrorInfo      `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// WriteEnvelope answers 200 with {"epoch":…,"status":"ok","result":…}.
func WriteEnvelope(w http.ResponseWriter, epoch uint64, result any) {
	raw, err := json.Marshal(result)
	if err != nil {
		WriteEnvelopeError(w, http.StatusInternalServerError, epoch, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(Envelope{Epoch: epoch, Status: "ok", Result: raw})
}

// WriteEnvelopeError answers httpStatus with
// {"epoch":…,"status":"error","error":{"code":…,"msg":…}}. Callers set any
// transport hints (Retry-After, X-Fenced) on the header first.
func WriteEnvelopeError(w http.ResponseWriter, httpStatus int, epoch uint64, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatus)
	_ = json.NewEncoder(w).Encode(Envelope{Epoch: epoch, Status: "error", Error: &ErrorInfo{Code: code, Msg: msg}})
}
