package admin

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/core"
	"github.com/ibbesgx/ibbesgx/internal/kdf"
	"github.com/ibbesgx/ibbesgx/internal/storage"
)

// newCASPeer builds a second CAS administrator sharing s's enclave and
// store, with the given group restored from the cloud.
func newCASPeer(t *testing.T, s *sys, capacity int, group string) *Admin {
	t.Helper()
	mgr, err := core.NewManager(s.encl, capacity, 42)
	if err != nil {
		t.Fatal(err)
	}
	peer := New("admin-2", mgr, s.store, nil)
	peer.EnableCAS()
	if group != "" {
		if err := peer.RestoreGroup(context.Background(), group); err != nil {
			t.Fatal(err)
		}
	}
	return peer
}

func TestCASStaleAdminRefreshesAndRetries(t *testing.T) {
	s := newSys(t, 3)
	s.admin.EnableCAS()
	ctx := context.Background()
	members := users(5)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}
	peer := newCASPeer(t, s, 3, "g")

	// admin-1 writes; peer's tracked version is now stale.
	if err := s.admin.AddUser(ctx, "g", "from-1@example.com"); err != nil {
		t.Fatal(err)
	}
	// peer's first conditional write conflicts, it refreshes from the cloud
	// (absorbing admin-1's add) and retries transparently.
	if err := peer.AddUser(ctx, "g", "from-2@example.com"); err != nil {
		t.Fatalf("stale peer add: %v", err)
	}
	got, err := peer.Manager().Members("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(members)+2 {
		t.Fatalf("peer sees %d members, want %d", len(got), len(members)+2)
	}

	// Both admins' users converge on one group key.
	c1 := s.clientFor(t, "from-1@example.com", "g")
	c2 := s.clientFor(t, "from-2@example.com", "g")
	gk1, err := c1.GroupKey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gk2, err := c2.GroupKey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gk1 != gk2 {
		t.Fatal("users of the two admins disagree on the group key")
	}
}

func TestCASDuplicateCreateResolvesToOneWinner(t *testing.T) {
	s := newSys(t, 3)
	s.admin.EnableCAS()
	ctx := context.Background()
	if err := s.admin.CreateGroup(ctx, "g", users(4)); err != nil {
		t.Fatal(err)
	}
	// A second admin that never heard of g tries to create it: its first
	// conditional write conflicts, the refresh absorbs the winner's group,
	// and the retry aborts with ErrGroupExists instead of clobbering.
	peer := newCASPeer(t, s, 3, "")
	err := peer.CreateGroup(ctx, "g", []string{"intruder@example.com"})
	if !errors.Is(err, core.ErrGroupExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	// The winner's records are intact: a member still decrypts.
	c := s.clientFor(t, users(4)[0], "g")
	if _, err := c.GroupKey(ctx); err != nil {
		t.Fatalf("winner's group corrupted: %v", err)
	}
}

func TestCASExhaustedRetriesAbortCleanly(t *testing.T) {
	s := newSys(t, 3)
	ctx := context.Background()
	members := users(4)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}

	// A CAS admin over a store that loses every CAS race.
	faulty := storage.NewFaultStore(s.store)
	mgr, err := core.NewManager(s.encl, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	adm := New("admin-2", mgr, faulty, nil)
	adm.EnableCAS()
	if err := adm.RestoreGroup(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	faulty.FailEveryPutIf(1) // every conditional write conflicts
	err = adm.AddUser(ctx, "g", "new@example.com")
	if !errors.Is(err, storage.ErrVersionConflict) {
		t.Fatalf("exhausted retries: %v", err)
	}
	// The abort dropped the (now untrusted) local cache rather than leaving
	// it divergent from the cloud...
	if _, err := mgr.Members("g"); !errors.Is(err, core.ErrNoSuchGroup) {
		t.Fatalf("aborted group still cached: %v", err)
	}
	// ...and wrote nothing: the cloud still serves the original membership.
	faulty.FailEveryPutIf(0)
	if err := adm.RestoreGroup(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	got, err := mgr.Members("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(members) {
		t.Fatalf("cloud membership = %d, want %d", len(got), len(members))
	}
	// After the fault clears, the same admin operates normally again.
	if err := adm.AddUser(ctx, "g", "new@example.com"); err != nil {
		t.Fatalf("add after recovery: %v", err)
	}
	c := s.clientFor(t, "new@example.com", "g")
	if _, err := c.GroupKey(ctx); err != nil {
		t.Fatalf("member cannot decrypt after recovery: %v", err)
	}
}

func TestCASConcurrentAdminsSameGroupConverge(t *testing.T) {
	s := newSys(t, 4)
	s.admin.EnableCAS()
	ctx := context.Background()
	members := users(12)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}
	peer := newCASPeer(t, s, 4, "g")

	// Two admins hammer the same group concurrently: adds and removes on
	// disjoint users. CAS serialises them; nobody's write is lost.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs <- s.admin.AddUsers(ctx, "g", []string{"a1@x", "a2@x", "a3@x"})
		errs <- s.admin.RemoveUser(ctx, "g", members[0])
	}()
	go func() {
		defer wg.Done()
		errs <- peer.AddUsers(ctx, "g", []string{"b1@x", "b2@x", "b3@x"})
		errs <- peer.RemoveUser(ctx, "g", members[1])
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent admin op: %v", err)
		}
	}

	// A fresh verifier restored from the cloud sees all six adds and both
	// removals, and every surviving member decrypts to one group key.
	verifier := newCASPeer(t, s, 4, "g")
	got, err := verifier.Manager().Members("g")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(members) + 6 - 2; len(got) != want {
		t.Fatalf("converged membership = %d, want %d", len(got), want)
	}
	var ref *[kdf.KeySize]byte
	for _, u := range got {
		c := s.clientFor(t, u, "g")
		gk, err := c.GroupKey(ctx)
		if err != nil {
			t.Fatalf("survivor %s cannot decrypt: %v", u, err)
		}
		if ref == nil {
			ref = &gk
		} else if *ref != gk {
			t.Fatalf("survivor %s derives a different group key", u)
		}
	}
	// The revoked users are locked out.
	for _, u := range members[:2] {
		c := s.clientFor(t, u, "g")
		if _, err := c.GroupKey(ctx); err == nil {
			t.Fatalf("revoked user %s still decrypts", u)
		}
	}
}

func TestConcurrentOpsSameAdminSameGroupLoseNothing(t *testing.T) {
	// Regression: without the per-group op lock in mutate, two concurrent
	// operations through ONE admin could invert between compute and
	// publish — the earlier snapshot overwriting the later one's records.
	for _, cas := range []bool{false, true} {
		name := "plain"
		if cas {
			name = "cas"
		}
		t.Run(name, func(t *testing.T) {
			s := newSys(t, 4)
			if cas {
				s.admin.EnableCAS()
			}
			ctx := context.Background()
			members := users(4)
			if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
				t.Fatal(err)
			}
			const joiners = 8
			var wg sync.WaitGroup
			errs := make(chan error, joiners)
			for i := 0; i < joiners; i++ {
				u := fmt.Sprintf("join-%d@x", i)
				wg.Add(1)
				go func() {
					defer wg.Done()
					errs <- s.admin.AddUser(ctx, "g", u)
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatalf("concurrent add: %v", err)
				}
			}
			// The cloud (via a fresh restore) must list every joiner, and
			// each must decrypt.
			verifier := newCASPeer(t, s, 4, "g")
			got, err := verifier.Manager().Members("g")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(members)+joiners {
				t.Fatalf("cloud membership = %d, want %d (a concurrent write was lost)", len(got), len(members)+joiners)
			}
			for i := 0; i < joiners; i++ {
				u := fmt.Sprintf("join-%d@x", i)
				c := s.clientFor(t, u, "g")
				if _, err := c.GroupKey(ctx); err != nil {
					t.Fatalf("joiner %s cannot decrypt: %v", u, err)
				}
			}
		})
	}
}
