package admin

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/client"
	"github.com/ibbesgx/ibbesgx/internal/core"
)

func TestBatchedMembershipEndToEnd(t *testing.T) {
	s := newSys(t, 3)
	ctx := context.Background()
	base := users(6)
	if err := s.admin.CreateGroup(ctx, "g", base); err != nil {
		t.Fatal(err)
	}

	joiners := []string{"j1@x", "j2@x", "j3@x"}
	if err := s.admin.AddUsers(ctx, "g", joiners); err != nil {
		t.Fatal(err)
	}
	// Every joiner reads the group key straight from the cloud.
	var ref [32]byte
	for i, u := range joiners {
		gk, err := s.clientFor(t, u, "g").GroupKey(ctx)
		if err != nil {
			t.Fatalf("joiner %s: %v", u, err)
		}
		if i == 0 {
			ref = gk
		} else if gk != ref {
			t.Fatalf("joiner %s sees a different key", u)
		}
	}

	if err := s.admin.RemoveUsers(ctx, "g", []string{base[0], joiners[0]}); err != nil {
		t.Fatal(err)
	}
	// Removed users are evicted; survivors converge on a rotated key.
	if _, err := s.clientFor(t, base[0], "g").GroupKey(ctx); err == nil {
		t.Fatal("removed user still derives the group key from the cloud")
	}
	gk2, err := s.clientFor(t, joiners[1], "g").GroupKey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gk2 == ref {
		t.Fatal("batch removal did not rotate the group key")
	}

	// The op log certifies each member of both batches individually.
	adds, removes := 0, 0
	for _, e := range s.log.Entries() {
		switch e.Kind {
		case core.OpAddUser:
			adds++
		case core.OpRemoveUser:
			removes++
		}
	}
	if adds != len(joiners) || removes != 2 {
		t.Fatalf("certified adds=%d removes=%d, want %d and 2", adds, removes, len(joiners))
	}
}

func TestBatchRoutesOverHTTP(t *testing.T) {
	svc, s := newService(t)
	ts := httptest.NewServer(svc)
	defer ts.Close()

	api := client.NewAdminAPI(nil, ts.URL)
	ctx := context.Background()
	if err := api.CreateGroup(ctx, "g", users(4)); err != nil {
		t.Fatal(err)
	}
	if err := api.AddUsers(ctx, "g", []string{"a@x", "b@x"}); err != nil {
		t.Fatal(err)
	}
	if err := api.RemoveUsers(ctx, "g", []string{"a@x", users(4)[0]}); err != nil {
		t.Fatal(err)
	}
	members, err := s.admin.Manager().Members("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 { // 4 + 2 − 2
		t.Fatalf("members after batch routes = %v", members)
	}
	// A batch touching an unknown member maps to an error status.
	if err := api.RemoveUsers(ctx, "g", []string{"ghost@x"}); err == nil {
		t.Fatal("batch removal of unknown member accepted over HTTP")
	}
	// Unknown routes 404.
	resp, err := http.Post(ts.URL+"/admin/bogus", "application/json", strings.NewReader(`{"group":"g"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown admin route: %d", resp.StatusCode)
	}
}

// TestConcurrentAdminGroups drives one Admin from many goroutines, each on
// its own group, against the shared cloud store — the admin-layer companion
// to the core concurrency tests for the -race CI job.
func TestConcurrentAdminGroups(t *testing.T) {
	s := newSys(t, 3)
	const groups = 3
	var wg sync.WaitGroup
	errs := make(chan error, groups)
	for gi := 0; gi < groups; gi++ {
		name := fmt.Sprintf("g%d", gi)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			base := make([]string, 5)
			for i := range base {
				base[i] = fmt.Sprintf("%s-u%d@x", name, i)
			}
			if err := s.admin.CreateGroup(ctx, name, base); err != nil {
				errs <- err
				return
			}
			if err := s.admin.AddUsers(ctx, name, []string{name + "-j1@x", name + "-j2@x"}); err != nil {
				errs <- err
				return
			}
			if err := s.admin.RemoveUsers(ctx, name, []string{base[0], name + "-j1@x"}); err != nil {
				errs <- err
				return
			}
			if err := s.admin.RekeyGroup(ctx, name); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Each group's survivors read one common key from the cloud.
	for gi := 0; gi < groups; gi++ {
		name := fmt.Sprintf("g%d", gi)
		survivor := fmt.Sprintf("%s-u1@x", name)
		if _, err := s.clientFor(t, survivor, name).GroupKey(context.Background()); err != nil {
			t.Fatalf("%s survivor cannot decrypt: %v", name, err)
		}
	}
}
