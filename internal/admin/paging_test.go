package admin

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/client"
	"github.com/ibbesgx/ibbesgx/internal/core"
	"github.com/ibbesgx/ibbesgx/internal/storage"
)

// TestKillMidRestoreLeavesGroupLoadable: an admin dying partway through the
// streaming restore (index fetched, sealed key read lost to the cloud) must
// not leave a half-restored group behind — the next restore attempt loads
// it cleanly, and record corruption discovered at hydration time never
// poisons the group's loadability either.
func TestKillMidRestoreLeavesGroupLoadable(t *testing.T) {
	s := newSys(t, 3)
	ctx := context.Background()
	members := users(11)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}

	faulty := storage.NewFaultStore(s.store)
	mgr2, err := core.NewManager(s.encl, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	admin2 := New("admin-2", mgr2, faulty, nil)

	// The streaming restore's object reads are (1) the member index and
	// (2) the sealed group key; List/Version/Poll are exempt from the
	// injector. Failing the 2nd read kills the restore between them.
	faulty.FailEveryGet(2)
	if err := admin2.RestoreGroup(ctx, "g"); err == nil {
		t.Fatal("restore survived a dead sealed-key read")
	}
	if mgr2.HasGroup("g") {
		t.Fatal("failed restore left a half-loaded group registered")
	}

	// The crash was transient: a clean retry restores the group whole.
	faulty.FailEveryGet(0)
	if err := admin2.RestoreGroup(ctx, "g"); err != nil {
		t.Fatalf("retry after mid-restore kill: %v", err)
	}
	got, err := mgr2.Members("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(members) {
		t.Fatalf("restored members = %d, want %d", len(got), len(members))
	}

	// Hydration-time faults fail the read, not the group: with the cloud
	// flaky every record Get dies, but once it heals the same group serves
	// records without another restore.
	faulty.SetFailGets(true)
	if _, err := mgr2.Records("g"); err == nil {
		t.Fatal("hydration through a dead cloud succeeded")
	}
	faulty.SetFailGets(false)
	recs, err := mgr2.Records("g")
	if err != nil {
		t.Fatalf("hydration after the cloud healed: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("no records hydrated")
	}
	// The restored admin is still operational end to end.
	if err := admin2.AddUser(ctx, "g", "late@example.com"); err != nil {
		t.Fatalf("AddUser after kill-and-retry restore: %v", err)
	}
}

// TestEvictionRehydrateBitIdentical: pages displaced by the LRU bound and
// hydrated back from the store must carry byte-for-byte the records that
// were evicted — paging must be invisible to the crypto layer.
func TestEvictionRehydrateBitIdentical(t *testing.T) {
	s := newSys(t, 3)
	ctx := context.Background()
	s.admin.Manager().SetMaxResidentPages(2)
	members := users(25) // 9 pages at capacity 3, cache bound 2
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}

	marshalAll := func(recs map[string]*core.PartitionRecord) map[string][]byte {
		t.Helper()
		out := make(map[string][]byte, len(recs))
		for id, r := range recs {
			blob, err := r.Marshal(s.admin.Manager().Scheme())
			if err != nil {
				t.Fatal(err)
			}
			out[id] = blob
		}
		return out
	}

	// First full walk hydrates every page through the 2-page cache…
	recsA, err := s.admin.Manager().Records("g")
	if err != nil {
		t.Fatal(err)
	}
	a := marshalAll(recsA)
	stats, err := s.admin.Manager().GroupPageStats("g")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evictions == 0 {
		t.Fatalf("walking %d pages through a %d-page cache evicted nothing", len(recsA), stats.Limit)
	}
	if stats.Limit != 2 {
		t.Fatalf("page limit = %d, want 2", stats.Limit)
	}

	// …and the second walk re-hydrates what the first displaced.
	recsB, err := s.admin.Manager().Records("g")
	if err != nil {
		t.Fatal(err)
	}
	b := marshalAll(recsB)
	if len(a) != len(b) {
		t.Fatalf("record count changed across rehydration: %d vs %d", len(a), len(b))
	}
	for id, blobA := range a {
		if !bytes.Equal(blobA, b[id]) {
			t.Fatalf("partition %s not bit-identical after eviction and rehydration", id)
		}
	}

	// Cross-check against the store's durable copies: the cache never
	// serves bytes the cloud does not hold.
	for id, blobA := range a {
		durable, err := s.store.Get(ctx, "g", id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blobA, durable) {
			t.Fatalf("partition %s diverges from its durable record", id)
		}
	}
}

// TestMembersPagingHTTP walks GET /admin/members with a small page size and
// must reassemble exactly the manager's member list; the AdminAPI client
// does the same through its cursor helper.
func TestMembersPagingHTTP(t *testing.T) {
	s := newSys(t, 3)
	ctx := context.Background()
	members := users(10)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}
	svc := &Service{Admin: s.admin}
	srv := httptest.NewServer(svc)
	defer srv.Close()
	api := client.NewAdminAPI(http.DefaultClient, srv.URL)

	// Page by hand with limit 3: ceil(10/3) = 4 pages.
	var walked []string
	after := ""
	pages := 0
	for {
		page, next, err := api.Members(ctx, "g", after, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) > 3 {
			t.Fatalf("page of %d exceeds limit 3", len(page))
		}
		walked = append(walked, page...)
		pages++
		if next == "" {
			break
		}
		after = next
	}
	if pages < 4 {
		t.Fatalf("10 members at limit 3 walked in %d pages", pages)
	}
	want, err := s.admin.Manager().Members("g")
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(walked) {
		t.Fatal("paged walk out of order")
	}
	if len(walked) != len(want) {
		t.Fatalf("paged walk found %d members, want %d", len(walked), len(want))
	}
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("paged walk[%d] = %s, want %s", i, walked[i], want[i])
		}
	}

	// The cursor helper reassembles the same listing.
	all, err := api.AllMembers(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(want) {
		t.Fatalf("AllMembers = %d members, want %d", len(all), len(want))
	}

	// Unknown group and missing group surface typed envelope errors.
	if _, _, err := api.Members(ctx, "nope", "", 0); err == nil {
		t.Fatal("listing an unknown group succeeded")
	}
	if _, _, err := api.Members(ctx, "", "", 0); err == nil {
		t.Fatal("listing without a group succeeded")
	}
}
