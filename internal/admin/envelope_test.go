package admin

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/client"
)

// TestAdminErrorsCarryEnvelope: admin-operation failures answer with the
// typed JSON envelope — code, message, and the serving epoch — and
// client.AdminAPI surfaces them as *APIError.
func TestAdminErrorsCarryEnvelope(t *testing.T) {
	svc, _ := newService(t)
	svc.Epoch = func() uint64 { return 7 }
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Removing a user from a group that does not exist is a genuine
	// conflict: the envelope must say so, typed.
	resp, err := http.Post(ts.URL+"/admin/remove", "application/json",
		strings.NewReader(`{"group":"nope","user":"u"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not the envelope: %v", err)
	}
	if env.Status != "error" || env.Error == nil || env.Error.Code != CodeConflict {
		t.Fatalf("envelope = %+v, want status=error code=%s", env, CodeConflict)
	}
	if env.Epoch != 7 {
		t.Fatalf("envelope epoch = %d, want 7", env.Epoch)
	}

	// The typed client decodes the same envelope into an *APIError.
	api := client.NewAdminAPI(nil, ts.URL)
	opErr := api.RemoveUser(t.Context(), "nope", "u")
	var apiErr *client.APIError
	if !errors.As(opErr, &apiErr) {
		t.Fatalf("error %T is not *client.APIError: %v", opErr, opErr)
	}
	if apiErr.Code != CodeConflict || apiErr.Epoch != 7 || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("APIError = %+v", apiErr)
	}
	if errors.Is(opErr, client.ErrFencedEpoch) || errors.Is(opErr, client.ErrNotOwner) {
		t.Fatal("a plain conflict matched a routing sentinel")
	}
}

// TestClientDecodesTypedSentinels: fenced_epoch and not_owner envelopes map
// to the package sentinels via errors.Is, and plain-text error bodies (a
// proxy, an older server) still yield a usable untyped *APIError.
func TestClientDecodesTypedSentinels(t *testing.T) {
	cases := []struct {
		name     string
		code     string
		status   int
		sentinel error
	}{
		{"fenced", CodeFencedEpoch, http.StatusPreconditionFailed, client.ErrFencedEpoch},
		{"not-owner", CodeNotOwner, http.StatusServiceUnavailable, client.ErrNotOwner},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				WriteEnvelopeError(w, tc.status, 42, tc.code, "go away")
			}))
			defer ts.Close()
			err := client.NewAdminAPI(nil, ts.URL).RekeyGroup(t.Context(), "g")
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.sentinel)
			}
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) || apiErr.Epoch != 42 || apiErr.Msg != "go away" {
				t.Fatalf("APIError = %+v", apiErr)
			}
		})
	}

	t.Run("plain-text-fallback", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}))
		defer ts.Close()
		err := client.NewAdminAPI(nil, ts.URL).RekeyGroup(t.Context(), "g")
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("error %T is not *client.APIError", err)
		}
		if apiErr.Code != "" || apiErr.Msg != "boom" || apiErr.StatusCode != 500 {
			t.Fatalf("APIError = %+v", apiErr)
		}
		if errors.Is(err, client.ErrFencedEpoch) || errors.Is(err, client.ErrNotOwner) {
			t.Fatal("untyped error matched a sentinel")
		}
	})
}
