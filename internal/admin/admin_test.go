package admin

import (
	"context"
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/client"
	"github.com/ibbesgx/ibbesgx/internal/core"
	"github.com/ibbesgx/ibbesgx/internal/enclave"
	"github.com/ibbesgx/ibbesgx/internal/kdf"
	"github.com/ibbesgx/ibbesgx/internal/pairing"
	"github.com/ibbesgx/ibbesgx/internal/storage"
)

// sys is a full in-process deployment: enclave, manager, admin, store, log.
type sys struct {
	encl  *enclave.IBBEEnclave
	admin *Admin
	store *storage.MemStore
	log   *core.OpLog
}

func newSys(t *testing.T, capacity int) *sys {
	t.Helper()
	platform, err := enclave.NewPlatform("p", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ie, err := enclave.NewIBBEEnclave(platform, pairing.TypeA160())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ie.EcallSetup(capacity); err != nil {
		t.Fatal(err)
	}
	mgr, err := core.NewManager(ie, capacity, 7)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewMemStore(storage.Latency{})
	log, err := core.NewOpLog()
	if err != nil {
		t.Fatal(err)
	}
	return &sys{encl: ie, admin: New("admin-1", mgr, store, log), store: store, log: log}
}

func (s *sys) clientFor(t *testing.T, id, group string) *client.Client {
	t.Helper()
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := s.encl.EcallExtractUserKey(id, priv.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	uk, err := prov.Open(s.encl.Scheme(), s.encl.IdentityPublicKey(), priv)
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.New(s.encl.Scheme(), s.admin.Manager().PublicKey(), id, uk, s.store, group)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func users(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("u%03d@example.com", i)
	}
	return out
}

func TestCreateGroupPublishesRecords(t *testing.T) {
	s := newSys(t, 2)
	ctx := context.Background()
	if err := s.admin.CreateGroup(ctx, "g", users(5)); err != nil {
		t.Fatal(err)
	}
	names, err := s.store.List(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	var parts []string
	sealedSeen, indexSeen := false, false
	for _, n := range names {
		switch {
		case n == "_sealed_gk":
			sealedSeen = true
		case n == "_member_index":
			indexSeen = true
		case !strings.HasPrefix(n, "_"):
			parts = append(parts, n)
		}
	}
	if len(parts) != 3 { // 5 members / capacity 2
		t.Fatalf("objects = %v, want 3 partitions", names)
	}
	if !sealedSeen {
		t.Fatal("sealed group key not published (Algorithm 1 line 7)")
	}
	if !indexSeen {
		t.Fatal("member index not published (O(index) takeover restore)")
	}
}

func TestClientReadsGroupKeyFromCloud(t *testing.T) {
	s := newSys(t, 3)
	ctx := context.Background()
	members := users(5)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}
	var ref [kdf.KeySize]byte
	for i, u := range members {
		c := s.clientFor(t, u, "g")
		gk, err := c.GroupKey(ctx)
		if err != nil {
			t.Fatalf("GroupKey(%s): %v", u, err)
		}
		if i == 0 {
			ref = gk
		} else if gk != ref {
			t.Fatalf("member %s sees a different key", u)
		}
	}
}

func TestAddUserVisibleToClient(t *testing.T) {
	s := newSys(t, 3)
	ctx := context.Background()
	if err := s.admin.CreateGroup(ctx, "g", users(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.admin.AddUser(ctx, "g", "newbie@example.com"); err != nil {
		t.Fatal(err)
	}
	c := s.clientFor(t, "newbie@example.com", "g")
	old := s.clientFor(t, users(2)[0], "g")
	gk1, err := c.GroupKey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gk2, err := old.GroupKey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gk1 != gk2 {
		t.Fatal("joiner and old member disagree")
	}
}

func TestRemoveUserRotatesKeyAndEvicts(t *testing.T) {
	s := newSys(t, 2)
	ctx := context.Background()
	members := users(4)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}
	stay := s.clientFor(t, members[0], "g")
	leave := s.clientFor(t, members[3], "g")
	gkBefore, err := stay.GroupKey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leave.GroupKey(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.admin.RemoveUser(ctx, "g", members[3]); err != nil {
		t.Fatal(err)
	}
	gkAfter, err := stay.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gkAfter == gkBefore {
		t.Fatal("key not rotated after revocation")
	}
	if _, err := leave.Refresh(ctx); !errors.Is(err, client.ErrEvicted) {
		t.Fatalf("revoked client: %v, want ErrEvicted", err)
	}
}

func TestWatchDeliversRotations(t *testing.T) {
	s := newSys(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	members := users(4)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}
	c := s.clientFor(t, members[0], "g")

	var (
		mu   sync.Mutex
		keys [][kdf.KeySize]byte
	)
	watchErr := make(chan error, 1)
	go func() {
		watchErr <- c.Watch(ctx, func(gk [kdf.KeySize]byte) {
			mu.Lock()
			keys = append(keys, gk)
			mu.Unlock()
		})
	}()

	// Wait for the initial key.
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(keys) >= 1 })
	if err := s.admin.RemoveUser(ctx, "g", members[2]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(keys) >= 2 })
	if err := s.admin.RekeyGroup(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(keys) >= 3 })

	mu.Lock()
	defer mu.Unlock()
	if keys[0] == keys[1] || keys[1] == keys[2] {
		t.Fatal("watch delivered duplicate keys")
	}
	cancel()
	if err := <-watchErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("watch exit: %v", err)
	}
}

func TestWatchEndsWhenEvicted(t *testing.T) {
	s := newSys(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	members := users(2)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}
	c := s.clientFor(t, members[1], "g")
	watchErr := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		first := true
		watchErr <- c.Watch(ctx, func([kdf.KeySize]byte) {
			if first {
				close(started)
				first = false
			}
		})
	}()
	<-started
	if err := s.admin.RemoveUser(ctx, "g", members[1]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-watchErr:
		if !errors.Is(err, client.ErrEvicted) {
			t.Fatalf("watch exit: %v, want ErrEvicted", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("watch did not end on eviction")
	}
}

func TestRepartitionKeepsCloudConsistent(t *testing.T) {
	s := newSys(t, 2)
	ctx := context.Background()
	members := users(6)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}
	if err := s.admin.Repartition(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	// The cloud must hold exactly the manager's current partitions (plus
	// the reserved sealed-group-key object).
	names, err := s.store.List(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s.admin.Manager().Records("g")
	if err != nil {
		t.Fatal(err)
	}
	var partObjects []string
	for _, n := range names {
		if !strings.HasPrefix(n, "_") {
			partObjects = append(partObjects, n)
		}
	}
	if len(partObjects) != len(recs) {
		t.Fatalf("cloud has %d partition objects, manager has %d partitions", len(partObjects), len(recs))
	}
	for _, n := range partObjects {
		if _, ok := recs[n]; !ok {
			t.Fatalf("stale cloud object %s", n)
		}
	}
	// Clients still work after the re-layout.
	c := s.clientFor(t, members[0], "g")
	if _, err := c.GroupKey(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestOperationsAreCertified(t *testing.T) {
	s := newSys(t, 2)
	ctx := context.Background()
	if err := s.admin.CreateGroup(ctx, "g", users(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.admin.AddUser(ctx, "g", "x@example.com"); err != nil {
		t.Fatal(err)
	}
	if err := s.admin.RemoveUser(ctx, "g", "x@example.com"); err != nil {
		t.Fatal(err)
	}
	entries := s.log.Entries()
	if len(entries) != 3 {
		t.Fatalf("log entries = %d, want 3", len(entries))
	}
	if err := core.VerifyChain(entries, s.log.PublicKey()); err != nil {
		t.Fatal(err)
	}
	kinds := []core.OpKind{core.OpCreateGroup, core.OpAddUser, core.OpRemoveUser}
	for i, e := range entries {
		if e.Kind != kinds[i] || e.Admin != "admin-1" {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}

func TestClientCacheAvoidsRescan(t *testing.T) {
	s := newSys(t, 2)
	ctx := context.Background()
	members := users(4)
	if err := s.admin.CreateGroup(ctx, "g", members); err != nil {
		t.Fatal(err)
	}
	c := s.clientFor(t, members[0], "g")
	if _, err := c.GroupKey(ctx); err != nil {
		t.Fatal(err)
	}
	statsAfterFirst := s.store.Stats()
	if _, err := c.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	statsAfterSecond := s.store.Stats()
	// The second refresh should fetch exactly one object (the cached
	// partition), not rescan the directory.
	if diff := statsAfterSecond.Gets - statsAfterFirst.Gets; diff != 1 {
		t.Fatalf("cached refresh performed %d gets, want 1", diff)
	}
}

func TestAdminErrorsPropagate(t *testing.T) {
	s := newSys(t, 2)
	ctx := context.Background()
	if err := s.admin.AddUser(ctx, "missing", "u"); !errors.Is(err, core.ErrNoSuchGroup) {
		t.Fatalf("AddUser to missing group: %v", err)
	}
	if err := s.admin.CreateGroup(ctx, "g", users(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.admin.CreateGroup(ctx, "g", users(2)); !errors.Is(err, core.ErrGroupExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestEndToEndOverHTTPStore(t *testing.T) {
	// Same flow, but with admin and client talking to a real HTTP server.
	s := newSys(t, 2)
	ts := httptest.NewServer(storage.NewServer(s.store))
	t.Cleanup(ts.Close)
	hs := storage.NewHTTPStore(ts.URL)

	mgr := s.admin.Manager()
	adminHTTP := New("admin-http", mgr, hs, nil)
	ctx := context.Background()
	members := users(3)
	if err := adminHTTP.CreateGroup(ctx, "hg", members); err != nil {
		t.Fatal(err)
	}
	priv, _ := ecdh.P256().GenerateKey(rand.Reader)
	prov, err := s.encl.EcallExtractUserKey(members[1], priv.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	uk, err := prov.Open(s.encl.Scheme(), s.encl.IdentityPublicKey(), priv)
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.New(s.encl.Scheme(), mgr.PublicKey(), members[1], uk, hs, "hg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GroupKey(ctx); err != nil {
		t.Fatalf("HTTP end-to-end: %v", err)
	}
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition never held")
}
