package admin

import (
	"crypto/ecdh"
	"crypto/rand"
	"crypto/x509"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/core"
	"github.com/ibbesgx/ibbesgx/internal/enclave"
	"github.com/ibbesgx/ibbesgx/internal/ibbe"
	"github.com/ibbesgx/ibbesgx/internal/obs"
	"github.com/ibbesgx/ibbesgx/internal/pairing"
	"github.com/ibbesgx/ibbesgx/internal/pki"
	"github.com/ibbesgx/ibbesgx/internal/storage"
)

// Service exposes an administrator and the user-key provisioning channel
// over HTTP — the deployment shape of Fig. 5, where the admin server fronts
// the enclave. The provisioning payloads are self-protecting (ECIES to the
// user's ephemeral key plus an enclave signature), so the transport needs
// no additional secrecy; production deployments still wrap it in TLS as the
// paper prescribes.
//
// Routes:
//
//	POST /admin/create        {"group": g, "members": [...]}
//	POST /admin/add           {"group": g, "user": u}
//	POST /admin/remove        {"group": g, "user": u}
//	POST /admin/add-batch     {"group": g, "users": [...]}
//	POST /admin/remove-batch  {"group": g, "users": [...]}
//	POST /admin/rekey         {"group": g}
//	GET  /admin/members?group=g&after=cursor&limit=n → MembersResult
//	POST /provision           {"id": u, "ecdh_pub": b64} → ProvisionResponse
//	GET  /info                → SystemInfo
//
// The batch routes coalesce N membership changes into one re-key pass per
// touched partition (amortising the paper's dominant administrator cost);
// the singular routes remain for compatibility.
type Service struct {
	Admin *Admin
	// Encl is the enclave behind the admin (for provisioning).
	Encl *enclave.IBBEEnclave
	// Extract, when set, overrides the local-enclave user-key extraction:
	// a threshold cluster routes /provision through its share-holder quorum
	// (no single enclave holds the master secret), with the combine — and
	// the signature — still made inside this shard's enclave. Nil means
	// the local enclave extracts directly.
	Extract func(id string, userPub *ecdh.PublicKey) (*enclave.ProvisionedKey, error)
	// Epoch, when set, reports the membership epoch this service operates
	// under; it is stamped into every error envelope so clients can tell a
	// current owner's verdict from a superseded one's. Nil reports 0
	// (single-admin deployments have no epochs).
	Epoch func() uint64
	// EnclaveCertDER / RootCertDER are served to users for verification.
	EnclaveCertDER []byte
	RootCertDER    []byte
	// ParamsName identifies the pairing parameter set clients must use.
	ParamsName string

	// opSeconds / opErrors record per-op latency and failures once
	// Instrument attaches a registry (nil-safe when it never was).
	opSeconds *obs.HistogramVec
	opErrors  *obs.CounterVec
	shardID   string
}

// Instrument attaches the service to an observability registry, recording
// admin op latency by kind (create/add/remove/add-batch/remove-batch/rekey)
// and op failures, labelled with the given shard ID ("admin" if empty). A
// nil registry keeps the service un-instrumented.
func (s *Service) Instrument(r *obs.Registry, shardID string) {
	if r == nil {
		return
	}
	if shardID == "" {
		shardID = "admin"
	}
	s.shardID = shardID
	s.opSeconds = r.HistogramVec("ibbe_admin_op_seconds", "Admin operation latency by shard and op kind.", nil, "shard", "op")
	s.opErrors = r.CounterVec("ibbe_admin_op_errors_total", "Failed admin operations by shard and op kind.", "shard", "op")
}

// SystemInfo describes the deployment to clients.
type SystemInfo struct {
	Params         string `json:"params"`
	PublicKey      string `json:"public_key"`
	EnclaveCertDER string `json:"enclave_cert_der"`
	RootCertDER    string `json:"root_cert_der"`
	Capacity       int    `json:"partition_capacity"`
}

// ProvisionRequest is a user's key request.
type ProvisionRequest struct {
	ID      string `json:"id"`
	ECDHPub string `json:"ecdh_pub"` // base64 uncompressed P-256 point
}

// ProvisionResponse carries the wrapped user key plus everything needed to
// verify and use it.
type ProvisionResponse struct {
	ID             string `json:"id"`
	Box            string `json:"box"`
	Sig            string `json:"sig"`
	Params         string `json:"params"`
	PublicKey      string `json:"public_key"`
	EnclaveCertDER string `json:"enclave_cert_der"`
	RootCertDER    string `json:"root_cert_der"`
}

type memberOpRequest struct {
	Group   string   `json:"group"`
	User    string   `json:"user,omitempty"`
	Members []string `json:"members,omitempty"`
	Users   []string `json:"users,omitempty"`
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/info" && r.Method == http.MethodGet:
		s.handleInfo(w)
	case r.URL.Path == "/provision" && r.Method == http.MethodPost:
		s.handleProvision(w, r)
	case r.URL.Path == "/admin/members" && r.Method == http.MethodGet:
		s.handleMembers(w, r)
	case strings.HasPrefix(r.URL.Path, "/admin/") && r.Method == http.MethodPost:
		s.handleAdmin(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *Service) handleInfo(w http.ResponseWriter) {
	writeJSON(w, s.info())
}

func (s *Service) info() SystemInfo {
	scheme := s.Admin.Manager().Scheme()
	return SystemInfo{
		Params:         s.ParamsName,
		PublicKey:      base64.StdEncoding.EncodeToString(scheme.MarshalPublicKey(s.Admin.Manager().PublicKey())),
		EnclaveCertDER: base64.StdEncoding.EncodeToString(s.EnclaveCertDER),
		RootCertDER:    base64.StdEncoding.EncodeToString(s.RootCertDER),
		Capacity:       s.Admin.Manager().Capacity(),
	}
}

func (s *Service) handleProvision(w http.ResponseWriter, r *http.Request) {
	var req ProvisionRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	pubRaw, err := base64.StdEncoding.DecodeString(req.ECDHPub)
	if err != nil {
		http.Error(w, "bad ecdh_pub encoding", http.StatusBadRequest)
		return
	}
	pub, err := ecdh.P256().NewPublicKey(pubRaw)
	if err != nil {
		http.Error(w, "bad ecdh_pub point", http.StatusBadRequest)
		return
	}
	extract := s.Extract
	if extract == nil {
		extract = s.Encl.EcallExtractUserKey
	}
	_, span := obs.StartSpan(r.Context(), "admin.extract")
	t0 := time.Now()
	prov, err := extract(req.ID, pub)
	span.End(err)
	if s.opSeconds != nil {
		s.opSeconds.With(s.shardID, "extract").ObserveSince(t0)
		if err != nil {
			s.opErrors.With(s.shardID, "extract").Inc()
		}
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	info := s.info()
	writeJSON(w, ProvisionResponse{
		ID:             prov.ID,
		Box:            base64.StdEncoding.EncodeToString(prov.Box),
		Sig:            base64.StdEncoding.EncodeToString(prov.Sig),
		Params:         info.Params,
		PublicKey:      info.PublicKey,
		EnclaveCertDER: info.EnclaveCertDER,
		RootCertDER:    info.RootCertDER,
	})
}

func (s *Service) handleAdmin(w http.ResponseWriter, r *http.Request) {
	var req memberOpRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Group == "" {
		http.Error(w, "missing group", http.StatusBadRequest)
		return
	}
	kind := strings.TrimPrefix(r.URL.Path, "/admin/")
	ctx, span := obs.StartSpan(r.Context(), "admin."+kind)
	t0 := time.Now()
	var err error
	switch kind {
	case "create":
		err = s.Admin.CreateGroup(ctx, req.Group, req.Members)
	case "add":
		err = s.Admin.AddUser(ctx, req.Group, req.User)
	case "remove":
		err = s.Admin.RemoveUser(ctx, req.Group, req.User)
	case "add-batch":
		err = s.Admin.AddUsers(ctx, req.Group, req.Users)
	case "remove-batch":
		err = s.Admin.RemoveUsers(ctx, req.Group, req.Users)
	case "rekey":
		err = s.Admin.RekeyGroup(ctx, req.Group)
	default:
		span.End(nil)
		http.NotFound(w, r)
		return
	}
	span.End(err)
	if s.opSeconds != nil {
		s.opSeconds.With(s.shardID, kind).ObserveSince(t0)
		if err != nil {
			s.opErrors.With(s.shardID, kind).Inc()
		}
	}
	if err != nil {
		// A fenced write means this admin operates under a superseded
		// cluster membership: answer 412 with the storage layer's X-Fenced
		// marker (the same signal an HTTPStore server emits), so a routing
		// gateway refreshes its membership from the store record and
		// re-routes to the rightful owner instead of surfacing the failure.
		// The body is the typed envelope, so API clients get fenced_epoch
		// without sniffing headers.
		if errors.Is(err, storage.ErrFenced) {
			w.Header().Set(storage.FencedHeader, "1")
			w.Header().Set("Retry-After", "1")
			WriteEnvelopeError(w, http.StatusPreconditionFailed, s.epoch(), CodeFencedEpoch, err.Error())
			return
		}
		WriteEnvelopeError(w, http.StatusConflict, s.epoch(), CodeConflict, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// MembersResult is one page of a group's member listing. Next carries the
// cursor for the following page; empty means the listing is complete.
type MembersResult struct {
	Group   string   `json:"group"`
	Members []string `json:"members"`
	Next    string   `json:"next,omitempty"`
}

// membersPageDefault / membersPageMax bound one GET /admin/members response;
// arbitrarily large groups are walked with the after cursor, never
// materialised in one reply.
const (
	membersPageDefault = 1000
	membersPageMax     = core.MaxUnpagedMembers
)

func (s *Service) handleMembers(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	group := q.Get("group")
	if group == "" {
		WriteEnvelopeError(w, http.StatusBadRequest, s.epoch(), CodeBadRequest, "missing group")
		return
	}
	limit := membersPageDefault
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			WriteEnvelopeError(w, http.StatusBadRequest, s.epoch(), CodeBadRequest, "bad limit")
			return
		}
		limit = n
	}
	if limit > membersPageMax {
		limit = membersPageMax
	}
	members, err := s.Admin.Manager().MembersPage(group, q.Get("after"), limit)
	if err != nil {
		WriteEnvelopeError(w, http.StatusConflict, s.epoch(), CodeConflict, err.Error())
		return
	}
	res := MembersResult{Group: group, Members: members}
	if len(members) == limit {
		res.Next = members[len(members)-1]
	}
	writeJSON(w, res)
}

// epoch evaluates the optional Epoch hook.
func (s *Service) epoch() uint64 {
	if s.Epoch == nil {
		return 0
	}
	return s.Epoch()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// ProvisionOverHTTP is the user-side counterpart to the /provision
// endpoint: it generates an ephemeral ECDH key, requests the wrapped user
// key, verifies the enclave certificate chain against pinnedRoot (or the
// served root when pinnedRoot is nil — trust-on-first-use, acceptable only
// for demos) and the enclave signature, and returns the usable key
// material.
func ProvisionOverHTTP(httpc *http.Client, baseURL, id string, pinnedRoot *x509.Certificate) (*ibbe.Scheme, *ibbe.PublicKey, *ibbe.UserKey, error) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, nil, err
	}
	reqBody, err := json.Marshal(ProvisionRequest{
		ID:      id,
		ECDHPub: base64.StdEncoding.EncodeToString(priv.PublicKey().Bytes()),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	resp, err := httpc.Post(strings.TrimRight(baseURL, "/")+"/provision", "application/json", strings.NewReader(string(reqBody)))
	if err != nil {
		return nil, nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, nil, nil, fmt.Errorf("admin: provisioning failed: %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var pr ProvisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, nil, nil, err
	}

	params := pairing.ByName(pr.Params)
	if params == nil {
		return nil, nil, nil, fmt.Errorf("admin: unknown parameter set %q", pr.Params)
	}
	scheme := ibbe.NewScheme(params)

	certDER, err := base64.StdEncoding.DecodeString(pr.EnclaveCertDER)
	if err != nil {
		return nil, nil, nil, err
	}
	cert, err := x509.ParseCertificate(certDER)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("admin: parsing enclave certificate: %w", err)
	}
	root := pinnedRoot
	if root == nil {
		rootDER, err := base64.StdEncoding.DecodeString(pr.RootCertDER)
		if err != nil {
			return nil, nil, nil, err
		}
		if root, err = x509.ParseCertificate(rootDER); err != nil {
			return nil, nil, nil, fmt.Errorf("admin: parsing root certificate: %w", err)
		}
	}
	enclaveKey, err := pki.VerifyEnclaveCert(cert, root, enclave.IBBEMeasurement())
	if err != nil {
		return nil, nil, nil, fmt.Errorf("admin: enclave certificate rejected: %w", err)
	}

	box, err := base64.StdEncoding.DecodeString(pr.Box)
	if err != nil {
		return nil, nil, nil, err
	}
	sig, err := base64.StdEncoding.DecodeString(pr.Sig)
	if err != nil {
		return nil, nil, nil, err
	}
	prov := &enclave.ProvisionedKey{ID: pr.ID, Box: box, Sig: sig}
	userKey, err := prov.Open(scheme, enclaveKey, priv)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("admin: provisioned key rejected: %w", err)
	}

	pkRaw, err := base64.StdEncoding.DecodeString(pr.PublicKey)
	if err != nil {
		return nil, nil, nil, err
	}
	pk, err := scheme.UnmarshalPublicKey(pkRaw)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("admin: parsing system public key: %w", err)
	}
	return scheme, pk, userKey, nil
}

// ErrNoEnclave reports a Service constructed without its enclave.
var ErrNoEnclave = errors.New("admin: service requires an enclave")
