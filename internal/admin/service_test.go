package admin

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/attest"
	"github.com/ibbesgx/ibbesgx/internal/client"
	"github.com/ibbesgx/ibbesgx/internal/enclave"
	"github.com/ibbesgx/ibbesgx/internal/pki"
)

// newService builds a full attested service over a fresh system.
func newService(t *testing.T) (*Service, *sys) {
	t.Helper()
	s := newSys(t, 3)
	ias, err := attest.NewIAS()
	if err != nil {
		t.Fatal(err)
	}
	ias.RegisterPlatform(s.encl.Enclave().Platform())
	auditor, err := pki.NewAuditor(ias.PublicKey(), enclave.IBBEMeasurement())
	if err != nil {
		t.Fatal(err)
	}
	cert, err := auditor.AttestAndCertify(ias, s.encl)
	if err != nil {
		t.Fatal(err)
	}
	return &Service{
		Admin:          s.admin,
		Encl:           s.encl,
		EnclaveCertDER: cert.Raw,
		RootCertDER:    auditor.RootDER(),
		ParamsName:     "type-a-160",
	}, s
}

func TestServiceInfoAndAdminOps(t *testing.T) {
	svc, s := newService(t)
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/info: %d", resp.StatusCode)
	}

	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/admin/create", `{"group":"g","members":["a@x","b@x"]}`); code != 204 {
		t.Fatalf("create: %d", code)
	}
	if code := post("/admin/add", `{"group":"g","user":"c@x"}`); code != 204 {
		t.Fatalf("add: %d", code)
	}
	if code := post("/admin/remove", `{"group":"g","user":"a@x"}`); code != 204 {
		t.Fatalf("remove: %d", code)
	}
	if code := post("/admin/rekey", `{"group":"g"}`); code != 204 {
		t.Fatalf("rekey: %d", code)
	}
	// Errors surface as 409.
	if code := post("/admin/remove", `{"group":"g","user":"ghost@x"}`); code != 409 {
		t.Fatalf("bad remove: %d", code)
	}
	if code := post("/admin/create", `{}`); code != 400 {
		t.Fatalf("missing group: %d", code)
	}
	members, err := s.admin.Manager().Members("g")
	if err != nil || len(members) != 2 {
		t.Fatalf("members after ops: %v %v", members, err)
	}
}

func TestProvisionOverHTTPEndToEnd(t *testing.T) {
	svc, s := newService(t)
	ts := httptest.NewServer(svc)
	defer ts.Close()
	ctx := context.Background()

	if err := s.admin.CreateGroup(ctx, "g", []string{"alice@x", "bob@x"}); err != nil {
		t.Fatal(err)
	}
	scheme, pk, userKey, err := ProvisionOverHTTP(ts.Client(), ts.URL, "alice@x", nil)
	if err != nil {
		t.Fatalf("ProvisionOverHTTP: %v", err)
	}
	// The provisioned material decrypts the group key through the normal
	// client path.
	c, err := client.New(scheme, pk, "alice@x", userKey, s.store, "g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GroupKey(ctx); err != nil {
		t.Fatalf("decrypt with provisioned key: %v", err)
	}
}

func TestProvisionOverHTTPWithPinnedRoot(t *testing.T) {
	svc, _ := newService(t)
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Pinning the genuine root succeeds.
	root, err := parseDER(svc.RootCertDER)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ProvisionOverHTTP(ts.Client(), ts.URL, "u@x", root); err != nil {
		t.Fatalf("pinned genuine root: %v", err)
	}

	// Pinning a foreign root rejects the service.
	ias, err := attest.NewIAS()
	if err != nil {
		t.Fatal(err)
	}
	foreignAuditor, err := pki.NewAuditor(ias.PublicKey(), enclave.IBBEMeasurement())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ProvisionOverHTTP(ts.Client(), ts.URL, "u@x", foreignAuditor.RootCertificate()); err == nil {
		t.Fatal("foreign pinned root accepted the enclave certificate")
	}
}

func TestProvisionRejectsBadRequests(t *testing.T) {
	svc, _ := newService(t)
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/provision", "application/json", strings.NewReader(`{"id":"x","ecdh_pub":"!!!"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad encoding: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/provision", "application/json", strings.NewReader(`{"id":"x","ecdh_pub":"AAAA"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad point: %d", resp.StatusCode)
	}
}

func TestServiceUnknownRoutes(t *testing.T) {
	svc, _ := newService(t)
	ts := httptest.NewServer(svc)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown route: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/admin/frobnicate", "application/json", strings.NewReader(`{"group":"g"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown admin op: %d", resp.StatusCode)
	}
}
