// Threshold master-secret ECALLs: instead of every enclave holding the full
// MSK via sealed exchange, each holds ONE Feldman-VSS share of γ, and user
// keys are extracted by a quorum through blinded inversion — no single
// enclave ever reconstructs the secret, so compromising one shard (or its
// sealed state) reveals nothing.
//
// Inter-enclave protocol messages (deal shares, reshare sub-shares, blind
// round contributions, fallback share exports) travel sealed under the
// platform/measurement-bound sealing key: all shard enclaves run the same
// code on the same platform, so they can open each other's blobs while the
// untrusted coordinator relaying them cannot — exactly the trust story the
// sealed-MSK exchange already relied on. Labels bind every blob to its
// purpose, generation/nonce and endpoint indices, so a blob can never be
// replayed into a different protocol step.
package enclave

import (
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"github.com/ibbesgx/ibbesgx/internal/curve"
	"github.com/ibbesgx/ibbesgx/internal/dkg"
	"github.com/ibbesgx/ibbesgx/internal/ibbe"
)

// Threshold-mode errors.
var (
	// ErrThresholdMode reports an ECALL that needs the full master secret on
	// an enclave that holds only a threshold share (use the partial/blinded
	// variants instead).
	ErrThresholdMode = errors.New("enclave: enclave holds a threshold share, not the full master secret")
	// ErrNoShare reports a share-based ECALL on an enclave without a share.
	ErrNoShare = errors.New("enclave: no master-secret share installed")
	// ErrShareGeneration reports a share/record generation mismatch.
	ErrShareGeneration = errors.New("enclave: share generation mismatch")
	// ErrNonceReplayed reports a blinded-extraction nonce this enclave has
	// already combined its share under: replaying a round's sealed
	// contributions into a second EcallPartialExtract is refused, so the host
	// cannot farm related partials from one blinding.
	ErrNonceReplayed = errors.New("enclave: extraction nonce already used")
)

// maxUsedNonces bounds the per-enclave replay ledger; beyond it the oldest
// entries are evicted FIFO. Eviction cannot re-enable the attack the ledger
// exists for — labels bind every blob to one (generation, identity, nonce)
// triple regardless — it only bounds enclave memory.
const maxUsedNonces = 4096

// thresholdShare is the enclave-resident threshold state: this enclave's
// share of γ plus the public material needed to verify peers and publish
// blinded partials. It never leaves the enclave except sealed.
type thresholdShare struct {
	gen    uint64
	index  int
	degree int
	value  *big.Int
	comms  []*curve.Point
	base   *curve.Point // g, the extraction base

	// baseTab is the lazily-built fixed-base table for base: every blinded
	// extraction publishes P_i = base^{r_i}, so the per-round exponentiation
	// runs off precomputed windows exactly like the scheme's other
	// long-lived generators. Built on first use — a holder that never
	// serves an extraction never pays for the table.
	baseOnce sync.Once
	baseTab  *curve.FixedBase
}

// extractBase returns the fixed-base table for the share's extraction base.
func (t *thresholdShare) extractBase(g *curve.Curve) *curve.FixedBase {
	t.baseOnce.Do(func() { t.baseTab = g.NewFixedBase(t.base) })
	return t.baseTab
}

// suiteLocked returns the DKG suite over the IBBE commitment base
// h = PK.HPowers[0]; callers hold ie.mu and have checked ie.pk != nil.
func (ie *IBBEEnclave) suiteLocked() *dkg.Suite {
	return dkg.NewSuite(ie.scheme.P, ie.pk.HPowers[0])
}

// Transport labels: every sealed protocol blob is bound to its step. The
// extraction labels additionally bind the share GENERATION (a holder left
// behind by a reshare produces blobs no current peer can open — mixed-
// generation rounds fail loudly instead of combining into a wrong key) and
// the target IDENTITY (a blinding dealt for one id can never be evaluated
// at another, so the host cannot harvest related u_i values and solve for
// the master secret).
func dealLabel(gen uint64, index int) []byte {
	return []byte(fmt.Sprintf("dkg-deal|%d|%d", gen, index))
}
func reshareLabel(gen uint64, dealer, target int) []byte {
	return []byte(fmt.Sprintf("dkg-reshare|%d|%d|%d", gen, dealer, target))
}
func blindLabel(gen uint64, id string, nonce []byte, dealer, target int) []byte {
	idh := sha256.Sum256([]byte(id))
	return []byte(fmt.Sprintf("dkg-blind|%d|%x|%x|%d|%d", gen, idh, nonce, dealer, target))
}
func partialLabel(gen uint64, id string, nonce []byte) []byte {
	idh := sha256.Sum256([]byte(id))
	return []byte(fmt.Sprintf("dkg-partial|%d|%x|%x", gen, idh, nonce))
}
func exportLabel(nonce []byte) []byte {
	return []byte(fmt.Sprintf("dkg-export|%x", nonce))
}

// shareBlobLabel seals the persistent per-shard share blob.
var shareBlobLabel = []byte("ibbe-dkg-share")

// encodeShare serialises (generation, index, value) for sealing.
func (ie *IBBEEnclave) encodeShare(gen uint64, index int, v *big.Int) []byte {
	zr := ie.scheme.P.Zr
	out := make([]byte, 12, 12+zr.ByteLen())
	binary.BigEndian.PutUint64(out[:8], gen)
	binary.BigEndian.PutUint32(out[8:12], uint32(index))
	return append(out, zr.ToBytes(v)...)
}

// decodeShare reverses encodeShare.
func (ie *IBBEEnclave) decodeShare(b []byte) (gen uint64, index int, v *big.Int, err error) {
	zr := ie.scheme.P.Zr
	if len(b) != 12+zr.ByteLen() {
		return 0, 0, nil, errors.New("enclave: sealed share has wrong length")
	}
	v, err = zr.FromBytes(b[12:])
	if err != nil {
		return 0, 0, nil, fmt.Errorf("enclave: sealed share value: %w", err)
	}
	return binary.BigEndian.Uint64(b[:8]), int(binary.BigEndian.Uint32(b[8:12])), v, nil
}

// adoptPublicKeyLocked installs the master public key from its wire form if
// the enclave has none yet; callers hold ie.mu for writing.
func (ie *IBBEEnclave) adoptPublicKeyLocked(pkRaw []byte) error {
	if ie.pk != nil {
		return nil
	}
	pk, err := ie.scheme.UnmarshalPublicKey(pkRaw)
	if err != nil {
		return fmt.Errorf("enclave: adopting master public key: %w", err)
	}
	ie.pk = pk
	return nil
}

// EcallAdoptPublicKey installs the master public key on an enclave that
// holds no key material (a threshold-mode shard awaiting its first share).
// Public-key-only operations — partition creation via classic encryption,
// re-keying, coordination — work from here on; nothing secret is donated.
func (ie *IBBEEnclave) EcallAdoptPublicKey(pkRaw []byte) error {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	return ie.adoptPublicKeyLocked(pkRaw)
}

// recordStateLocked parses and cross-checks a DKG record against the
// enclave's public key: the zeroth commitment must equal h^γ = HPowers[1],
// binding the sharing to the master public key. Callers hold ie.mu with
// ie.pk set.
func (ie *IBBEEnclave) recordStateLocked(rec *dkg.Record) (comms []*curve.Point, base *curve.Point, err error) {
	g1 := ie.scheme.P.G1
	comms, err = rec.ParseCommitments(g1)
	if err != nil {
		return nil, nil, err
	}
	if len(ie.pk.HPowers) < 2 || !g1.Equal(comms[0], ie.pk.HPowers[1]) {
		return nil, nil, errors.New("enclave: commitments do not match the master public key")
	}
	base, err = g1.Unmarshal(rec.ExtractBase)
	if err != nil {
		return nil, nil, fmt.Errorf("enclave: extraction base: %w", err)
	}
	return comms, base, nil
}

// EcallDealShares runs inside the ONE enclave that (briefly) holds the full
// master secret at bootstrap: it deals a Feldman sharing of γ at the
// privacy degree for the holder set and returns the public record plus one
// sealed transport blob per holder. The dealer keeps its MSK only until its
// own EcallAdoptShare — adopting a share drops the full secret.
func (ie *IBBEEnclave) EcallDealShares(gen uint64, holders map[string]int) (*dkg.Record, map[string][]byte, error) {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	if ie.msk == nil || ie.pk == nil {
		return nil, nil, ErrEnclaveNotInitialized
	}
	indices := make([]int, 0, len(holders))
	for _, i := range holders {
		indices = append(indices, i)
	}
	degree := dkg.PrivacyDegree(len(holders))
	suite := ie.suiteLocked()
	deal, err := suite.Deal(ie.msk.Gamma, degree, indices, rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	g1 := ie.scheme.P.G1
	rec := &dkg.Record{
		Generation:   gen,
		Degree:       degree,
		Commitments:  make([][]byte, len(deal.Commitments)),
		ExtractBase:  g1.Marshal(ie.msk.G),
		MasterPK:     ie.scheme.MarshalPublicKey(ie.pk),
		Holders:      make(map[string]int, len(holders)),
		SealedShares: make(map[string][]byte),
	}
	for j, c := range deal.Commitments {
		rec.Commitments[j] = g1.Marshal(c)
	}
	byIndex := make(map[int]*big.Int, len(deal.Shares))
	for _, sh := range deal.Shares {
		byIndex[sh.Index] = sh.Value
	}
	transport := make(map[string][]byte, len(holders))
	for id, i := range holders {
		rec.Holders[id] = i
		blob, err := ie.enc.Seal(ie.scheme.P.Zr.ToBytes(byIndex[i]), dealLabel(gen, i))
		if err != nil {
			return nil, nil, fmt.Errorf("enclave: sealing share for %s: %w", id, err)
		}
		transport[id] = blob
	}
	return rec, transport, nil
}

// EcallAdoptShare installs this enclave's share from a bootstrap deal: it
// opens the transport blob, verifies the share against the record's
// commitments (which are themselves bound to the master public key), drops
// any full master secret the enclave still held, and returns the share
// sealed for restart persistence.
func (ie *IBBEEnclave) EcallAdoptShare(rec *dkg.Record, shardID string, transport []byte) ([]byte, error) {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	if err := ie.adoptPublicKeyLocked(rec.MasterPK); err != nil {
		return nil, err
	}
	index := rec.Index(shardID)
	if index == 0 {
		return nil, fmt.Errorf("enclave: %s is not a holder in generation %d", shardID, rec.Generation)
	}
	comms, base, err := ie.recordStateLocked(rec)
	if err != nil {
		return nil, err
	}
	raw, err := ie.enc.Unseal(transport, dealLabel(rec.Generation, index))
	if err != nil {
		return nil, err
	}
	value, err := ie.scheme.P.Zr.FromBytes(raw)
	if err != nil {
		return nil, fmt.Errorf("enclave: transported share: %w", err)
	}
	suite := ie.suiteLocked()
	if err := suite.VerifyShare(comms, dkg.Share{Index: index, Value: value}); err != nil {
		return nil, err
	}
	ie.thr = &thresholdShare{gen: rec.Generation, index: index, degree: rec.Degree, value: value, comms: comms, base: base}
	ie.msk = nil // entering threshold mode: the full secret must not survive
	return ie.enc.Seal(ie.encodeShare(rec.Generation, index, value), shareBlobLabel)
}

// EcallRestoreShare reloads a persisted share after a restart: the sealed
// blob (from the published record) must match the record's generation and
// this shard's holder index, and the share must verify against the
// commitments — so a corrupted or substituted store record is rejected
// instead of silently adopted.
func (ie *IBBEEnclave) EcallRestoreShare(rec *dkg.Record, shardID string, sealed []byte) error {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	if err := ie.adoptPublicKeyLocked(rec.MasterPK); err != nil {
		return err
	}
	comms, base, err := ie.recordStateLocked(rec)
	if err != nil {
		return err
	}
	raw, err := ie.enc.Unseal(sealed, shareBlobLabel)
	if err != nil {
		return err
	}
	gen, index, value, err := ie.decodeShare(raw)
	if err != nil {
		return err
	}
	if gen != rec.Generation || index != rec.Index(shardID) {
		return fmt.Errorf("%w: blob is (gen %d, index %d), record expects (gen %d, index %d)",
			ErrShareGeneration, gen, index, rec.Generation, rec.Index(shardID))
	}
	suite := ie.suiteLocked()
	if err := suite.VerifyShare(comms, dkg.Share{Index: index, Value: value}); err != nil {
		return err
	}
	ie.thr = &thresholdShare{gen: gen, index: index, degree: rec.Degree, value: value, comms: comms, base: base}
	ie.pendingThr = nil // a restore IS the commit of whatever was pending
	ie.msk = nil
	return nil
}

// EcallBlindRound is round 1 of a blinded extraction: this holder deals its
// contribution to the quorum's joint blinding — a fresh random ρ shared at
// degree d plus a zero-sharing at degree 2d — sealed per receiving holder,
// bound to this round's (generation, identity, nonce).
func (ie *IBBEEnclave) EcallBlindRound(gen uint64, id string, nonce []byte, quorum []int) (map[int][]byte, error) {
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.thr == nil {
		return nil, ErrNoShare
	}
	if ie.thr.gen != gen {
		return nil, fmt.Errorf("%w: holder is at generation %d, round wants %d", ErrShareGeneration, ie.thr.gen, gen)
	}
	if !containsIndex(quorum, ie.thr.index) {
		return nil, fmt.Errorf("enclave: holder %d is not in the quorum %v", ie.thr.index, quorum)
	}
	suite := ie.suiteLocked()
	bd, err := suite.BlindDeal(ie.thr.degree, quorum, rand.Reader)
	if err != nil {
		return nil, err
	}
	zr := ie.scheme.P.Zr
	out := make(map[int][]byte, len(quorum))
	for _, t := range quorum {
		body := append(zr.ToBytes(bd.R[t]), zr.ToBytes(bd.Z[t])...)
		blob, err := ie.enc.Seal(body, blindLabel(ie.thr.gen, id, nonce, ie.thr.index, t))
		if err != nil {
			return nil, err
		}
		out[t] = blob
	}
	return out, nil
}

// markNonceUsed enforces one-time use of an extraction nonce inside the
// enclave (bounded FIFO ledger, its own lock — callers hold ie.mu only for
// reading).
func (ie *IBBEEnclave) markNonceUsed(nonce []byte) error {
	ie.nonceMu.Lock()
	defer ie.nonceMu.Unlock()
	if ie.usedNonces == nil {
		ie.usedNonces = make(map[string]struct{})
	}
	k := string(nonce)
	if _, dup := ie.usedNonces[k]; dup {
		return ErrNonceReplayed
	}
	ie.usedNonces[k] = struct{}{}
	ie.nonceOrder = append(ie.nonceOrder, k)
	if len(ie.nonceOrder) > maxUsedNonces {
		delete(ie.usedNonces, ie.nonceOrder[0])
		ie.nonceOrder = ie.nonceOrder[1:]
	}
	return nil
}

// encodePartial serialises (index, u_i, P_i) for sealed transport to the
// combiner.
func (ie *IBBEEnclave) encodePartial(p *dkg.ExtractPartial) []byte {
	zr := ie.scheme.P.Zr
	out := make([]byte, 4, 4+zr.ByteLen())
	binary.BigEndian.PutUint32(out, uint32(p.Index))
	out = append(out, zr.ToBytes(p.U)...)
	return append(out, ie.scheme.P.G1.Marshal(p.P)...)
}

// decodePartial reverses encodePartial.
func (ie *IBBEEnclave) decodePartial(b []byte) (*dkg.ExtractPartial, error) {
	zr := ie.scheme.P.Zr
	w := zr.ByteLen()
	if len(b) < 4+w {
		return nil, errors.New("enclave: extract partial has wrong length")
	}
	u, err := zr.FromBytes(b[4 : 4+w])
	if err != nil {
		return nil, fmt.Errorf("enclave: extract partial u: %w", err)
	}
	pt, err := ie.scheme.P.G1.Unmarshal(b[4+w:])
	if err != nil {
		return nil, fmt.Errorf("enclave: extract partial point: %w", err)
	}
	return &dkg.ExtractPartial{Index: int(binary.BigEndian.Uint32(b[:4])), U: u, P: pt}, nil
}

// EcallPartialExtract is round 2: this holder aggregates the quorum's blind
// contributions into its blinding share r_i and mask z_i, and produces the
// pair (u_i, P_i) with u_i = r_i·(s_i+H(id)) + z_i and P_i = g^{r_i} —
// SEALED to the combiner enclave, never in host memory: from 2d+1 cleartext
// u_i the host could interpolate r·(γ+H(id)) and, with g^r from the P_i,
// compute the raw user key itself. The nonce is consumed here (one share
// evaluation per round), so replaying a round's sealed contributions cannot
// farm a second partial.
func (ie *IBBEEnclave) EcallPartialExtract(gen uint64, id string, nonce []byte, quorum []int, contribs map[int][]byte) ([]byte, error) {
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.thr == nil {
		return nil, ErrNoShare
	}
	if ie.thr.gen != gen {
		return nil, fmt.Errorf("%w: holder is at generation %d, round wants %d", ErrShareGeneration, ie.thr.gen, gen)
	}
	if !containsIndex(quorum, ie.thr.index) {
		return nil, fmt.Errorf("enclave: holder %d is not in the quorum %v", ie.thr.index, quorum)
	}
	if len(contribs) != len(quorum) {
		return nil, fmt.Errorf("enclave: blind round needs a contribution from every quorum member (%d of %d)", len(contribs), len(quorum))
	}
	if err := ie.markNonceUsed(nonce); err != nil {
		return nil, err
	}
	zr := ie.scheme.P.Zr
	w := zr.ByteLen()
	ri, zi := big.NewInt(0), big.NewInt(0)
	for _, dealer := range quorum {
		blob, ok := contribs[dealer]
		if !ok {
			return nil, fmt.Errorf("enclave: missing blind contribution from holder %d", dealer)
		}
		body, err := ie.enc.Unseal(blob, blindLabel(ie.thr.gen, id, nonce, dealer, ie.thr.index))
		if err != nil {
			return nil, err
		}
		if len(body) != 2*w {
			return nil, errors.New("enclave: blind contribution has wrong length")
		}
		r, err := zr.FromBytes(body[:w])
		if err != nil {
			return nil, err
		}
		z, err := zr.FromBytes(body[w:])
		if err != nil {
			return nil, err
		}
		ri = zr.Add(ri, r)
		zi = zr.Add(zi, z)
	}
	u := zr.Add(zr.Mul(ri, zr.Add(ie.thr.value, ie.scheme.HashID(id))), zi)
	// MulConstTime: r_i blinds this holder's share of the master secret, so
	// the published P_i = base^{r_i} must not leak r_i through the walk's
	// timing or table-access pattern.
	part := &dkg.ExtractPartial{Index: ie.thr.index, U: u, P: ie.thr.extractBase(ie.scheme.P.G1).MulConstTime(ri)}
	return ie.enc.Seal(ie.encodePartial(part), partialLabel(ie.thr.gen, id, nonce))
}

// EcallCombineExtract finishes a blinded extraction INSIDE the coordinating
// enclave: it opens the sealed partials (bound to this round's generation,
// identity and nonce — a stale-generation holder's partial fails to open
// here instead of silently corrupting the key) and folds them into the user
// secret key, which is wrapped for the user (ECIES + enclave signature)
// exactly like EcallExtractUserKey's output and never crosses the boundary
// in the clear. The coordinator needs no share of its own — only the public
// key.
func (ie *IBBEEnclave) EcallCombineExtract(id string, userPub *ecdh.PublicKey, gen uint64, degree int, nonce []byte, sealedPartials [][]byte) (*ProvisionedKey, error) {
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.pk == nil {
		return nil, ErrEnclaveNotInitialized
	}
	partials := make([]dkg.ExtractPartial, 0, len(sealedPartials))
	seen := make(map[int]bool, len(sealedPartials))
	for _, blob := range sealedPartials {
		raw, err := ie.enc.Unseal(blob, partialLabel(gen, id, nonce))
		if err != nil {
			return nil, err
		}
		part, err := ie.decodePartial(raw)
		if err != nil {
			return nil, err
		}
		if seen[part.Index] {
			continue
		}
		seen[part.Index] = true
		partials = append(partials, *part)
	}
	suite := ie.suiteLocked()
	d, err := suite.CombineExtract(degree, partials)
	if err != nil {
		return nil, err
	}
	return ie.provisionLocked(id, &ibbe.UserKey{D: d}, userPub)
}

// EcallExportShare seals this enclave's share for a RECOVERY combine: when
// fewer than 2d+1 holders are alive (no blinded quorum) but at least d+1
// are, the survivors export their shares — sealed, bound to the round nonce
// — to one coordinating enclave, which transiently reconstructs γ inside
// and discards it. Degraded but safe: the secret still exists only inside
// enclave code.
func (ie *IBBEEnclave) EcallExportShare(nonce []byte) ([]byte, error) {
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.thr == nil {
		return nil, ErrNoShare
	}
	return ie.enc.Seal(ie.encodeShare(ie.thr.gen, ie.thr.index, ie.thr.value), exportLabel(nonce))
}

// EcallRecoverExtract is the degraded-quorum extraction path: verify d+1
// exported shares against the record's commitments, reconstruct γ
// transiently, double-check h^γ against the zeroth commitment, extract the
// user key and wrap it. γ lives only on this call's stack.
func (ie *IBBEEnclave) EcallRecoverExtract(id string, userPub *ecdh.PublicKey, nonce []byte, rec *dkg.Record, blobs [][]byte) (*ProvisionedKey, error) {
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.pk == nil {
		return nil, ErrEnclaveNotInitialized
	}
	comms, base, err := ie.recordStateLocked(rec)
	if err != nil {
		return nil, err
	}
	suite := ie.suiteLocked()
	shares := make([]dkg.Share, 0, len(blobs))
	seen := make(map[int]bool, len(blobs))
	for _, blob := range blobs {
		raw, err := ie.enc.Unseal(blob, exportLabel(nonce))
		if err != nil {
			return nil, err
		}
		gen, index, value, err := ie.decodeShare(raw)
		if err != nil {
			return nil, err
		}
		if gen != rec.Generation {
			return nil, fmt.Errorf("%w: exported share is generation %d, record is %d", ErrShareGeneration, gen, rec.Generation)
		}
		if seen[index] {
			continue
		}
		seen[index] = true
		sh := dkg.Share{Index: index, Value: value}
		if err := suite.VerifyShare(comms, sh); err != nil {
			return nil, err
		}
		shares = append(shares, sh)
	}
	gamma, err := suite.Reconstruct(rec.Degree, shares)
	if err != nil {
		return nil, err
	}
	// Constant-time: γ is the reconstructed master secret itself.
	if !ie.scheme.P.G1.Equal(suite.G.ScalarMultConstTime(suite.Base, gamma), comms[0]) {
		return nil, errors.New("enclave: reconstructed secret does not match the committed master secret")
	}
	uk, err := ie.scheme.Extract(&ibbe.MasterSecretKey{G: base, Gamma: gamma}, id)
	if err != nil {
		return nil, err
	}
	return ie.provisionLocked(id, uk, userPub)
}

// EcallSubDeal is a reshare dealer's step: re-share this enclave's ACTIVE
// share at the new degree over the new holder indices. The sub-deal's
// commitments are returned in the clear (they are public; receivers check
// the zeroth one against the old commitments), the sub-shares sealed per
// receiver. A pending (uncommitted) reshare never deals — sub-deals always
// come from the committed generation.
func (ie *IBBEEnclave) EcallSubDeal(newGen uint64, newDegree int, newIndices []int) ([][]byte, map[int][]byte, error) {
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.thr == nil {
		return nil, nil, ErrNoShare
	}
	suite := ie.suiteLocked()
	sub, err := suite.SubDeal(dkg.Share{Index: ie.thr.index, Value: ie.thr.value}, newDegree, newIndices, rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	g1 := ie.scheme.P.G1
	comms := make([][]byte, len(sub.Commitments))
	for j, c := range sub.Commitments {
		comms[j] = g1.Marshal(c)
	}
	zr := ie.scheme.P.Zr
	blobs := make(map[int][]byte, len(newIndices))
	for _, sh := range sub.Shares {
		blob, err := ie.enc.Seal(zr.ToBytes(sh.Value), reshareLabel(newGen, ie.thr.index, sh.Index))
		if err != nil {
			return nil, nil, err
		}
		blobs[sh.Index] = blob
	}
	return comms, blobs, nil
}

// EcallAdoptReshare combines the sub-deals of a reshare into this enclave's
// share of the NEW generation, verifying every dealer against the current
// record (each sub-deal's zeroth commitment must equal the dealer's old
// committed share, and the combined zeroth commitment must equal the
// original h^γ — the reshare provably preserves the secret). The new share
// is held PENDING until EcallCommitReshare: the coordinator publishes the
// new record first, and a publish lost to a concurrent epoch bump drops the
// pending share instead of leaving enclaves on an unpublished generation.
// Returns the persistent sealed blob and the combined commitments.
func (ie *IBBEEnclave) EcallAdoptReshare(cur *dkg.Record, newGen uint64, newDegree, newIndex int, dealers []int, subComms map[int][][]byte, blobs map[int][]byte) ([]byte, [][]byte, error) {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	if err := ie.adoptPublicKeyLocked(cur.MasterPK); err != nil {
		return nil, nil, err
	}
	curComms, base, err := ie.recordStateLocked(cur)
	if err != nil {
		return nil, nil, err
	}
	suite := ie.suiteLocked()
	g1 := ie.scheme.P.G1
	zr := ie.scheme.P.Zr
	values := make([]*big.Int, len(dealers))
	allComms := make([][]*curve.Point, len(dealers))
	for k, dealer := range dealers {
		raw, ok := subComms[dealer]
		if !ok {
			return nil, nil, fmt.Errorf("enclave: reshare missing commitments from dealer %d", dealer)
		}
		pts := make([]*curve.Point, len(raw))
		for j, b := range raw {
			if pts[j], err = g1.Unmarshal(b); err != nil {
				return nil, nil, fmt.Errorf("enclave: dealer %d commitment %d: %w", dealer, j, err)
			}
		}
		// The dealer must be re-sharing exactly its committed old share.
		if !g1.Equal(pts[0], suite.CommitmentEval(curComms, dealer)) {
			return nil, nil, fmt.Errorf("enclave: dealer %d re-shares a value inconsistent with generation %d", dealer, cur.Generation)
		}
		blob, ok := blobs[dealer]
		if !ok {
			return nil, nil, fmt.Errorf("enclave: reshare missing sub-share from dealer %d", dealer)
		}
		body, err := ie.enc.Unseal(blob, reshareLabel(newGen, dealer, newIndex))
		if err != nil {
			return nil, nil, err
		}
		v, err := zr.FromBytes(body)
		if err != nil {
			return nil, nil, err
		}
		if err := suite.VerifyShare(pts, dkg.Share{Index: newIndex, Value: v}); err != nil {
			return nil, nil, fmt.Errorf("enclave: dealer %d sub-share: %w", dealer, err)
		}
		values[k] = v
		allComms[k] = pts
	}
	value, err := suite.CombineSubShares(dealers, values)
	if err != nil {
		return nil, nil, err
	}
	combined, err := suite.CombineCommitments(dealers, allComms)
	if err != nil {
		return nil, nil, err
	}
	if !g1.Equal(combined[0], curComms[0]) {
		return nil, nil, errors.New("enclave: reshare changed the committed master secret")
	}
	if err := suite.VerifyShare(combined, dkg.Share{Index: newIndex, Value: value}); err != nil {
		return nil, nil, err
	}
	ie.pendingThr = &thresholdShare{gen: newGen, index: newIndex, degree: newDegree, value: value, comms: combined, base: base}
	sealed, err := ie.enc.Seal(ie.encodeShare(newGen, newIndex, value), shareBlobLabel)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]byte, len(combined))
	for j, c := range combined {
		out[j] = g1.Marshal(c)
	}
	return sealed, out, nil
}

// EcallCommitReshare promotes the pending reshare to the active share once
// the coordinator has durably published the matching record.
func (ie *IBBEEnclave) EcallCommitReshare(newGen uint64) error {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	if ie.pendingThr == nil || ie.pendingThr.gen != newGen {
		return fmt.Errorf("%w: no pending reshare at generation %d", ErrShareGeneration, newGen)
	}
	ie.thr = ie.pendingThr
	ie.pendingThr = nil
	ie.msk = nil
	return nil
}

// EcallDropReshare discards a pending reshare whose publish was superseded
// by a concurrent membership change; the newer epoch runs its own reshare.
func (ie *IBBEEnclave) EcallDropReshare(newGen uint64) {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	if ie.pendingThr != nil && ie.pendingThr.gen == newGen {
		ie.pendingThr = nil
	}
}

// EcallWipeShare erases all threshold state — called on holders drained out
// of the holder set, so a superseded share cannot later be combined with
// old peers into the secret (proactive security of the reshare).
func (ie *IBBEEnclave) EcallWipeShare() {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	ie.thr = nil
	ie.pendingThr = nil
}

// HasMasterSecret reports whether the enclave holds the FULL master secret
// (legacy sealed-exchange mode). Threshold-mode enclaves return false.
func (ie *IBBEEnclave) HasMasterSecret() bool {
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	return ie.msk != nil
}

// ShareInfo reports the active threshold share's generation and index
// (ok=false when no share is installed).
func (ie *IBBEEnclave) ShareInfo() (gen uint64, index int, ok bool) {
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.thr == nil {
		return 0, 0, false
	}
	return ie.thr.gen, ie.thr.index, true
}

func containsIndex(set []int, i int) bool {
	for _, v := range set {
		if v == i {
			return true
		}
	}
	return false
}
