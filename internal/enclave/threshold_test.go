package enclave

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/dkg"
	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

// dealTestShares bootstraps an n-enclave threshold sharing on one platform:
// enclave 0 runs Setup, deals γ at generation 1, and every enclave
// (dealer included) adopts its share — after which no enclave holds the
// full secret.
func dealTestShares(t *testing.T, platform *Platform, n int) (map[string]*IBBEEnclave, *dkg.Record, []string) {
	t.Helper()
	params := pairing.TypeA160()
	ids := make([]string, n)
	encls := make(map[string]*IBBEEnclave, n)
	holders := make(map[string]int, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("shard-%d", i)
		ie, err := NewIBBEEnclave(platform, params)
		if err != nil {
			t.Fatalf("NewIBBEEnclave: %v", err)
		}
		ids[i] = id
		encls[id] = ie
		holders[id] = i + 1
	}
	dealer := encls[ids[0]]
	if _, _, err := dealer.EcallSetup(8); err != nil {
		t.Fatalf("EcallSetup: %v", err)
	}
	rec, transport, err := dealer.EcallDealShares(1, holders)
	if err != nil {
		t.Fatalf("EcallDealShares: %v", err)
	}
	for _, id := range ids {
		sealed, err := encls[id].EcallAdoptShare(rec, id, transport[id])
		if err != nil {
			t.Fatalf("%s EcallAdoptShare: %v", id, err)
		}
		rec.SealedShares[id] = sealed
	}
	return encls, rec, ids
}

// runBlindRound drives rounds 1 and 2 of a blinded extraction over the
// first 2d+1 holders, returning the sealed partials plus the quorum used.
func runBlindRound(t *testing.T, encls map[string]*IBBEEnclave, rec *dkg.Record, ids []string, id string, nonce []byte) ([][]byte, []string) {
	t.Helper()
	quorum := ids[:dkg.Quorum(rec.Degree)]
	indices := make([]int, len(quorum))
	for k, sid := range quorum {
		indices[k] = rec.Index(sid)
	}
	byTarget := make(map[int]map[int][]byte, len(quorum))
	for _, sid := range quorum {
		out, err := encls[sid].EcallBlindRound(rec.Generation, id, nonce, indices)
		if err != nil {
			t.Fatalf("%s EcallBlindRound: %v", sid, err)
		}
		for target, blob := range out {
			if byTarget[target] == nil {
				byTarget[target] = make(map[int][]byte, len(quorum))
			}
			byTarget[target][rec.Index(sid)] = blob
		}
	}
	partials := make([][]byte, 0, len(quorum))
	for _, sid := range quorum {
		part, err := encls[sid].EcallPartialExtract(rec.Generation, id, nonce, indices, byTarget[rec.Index(sid)])
		if err != nil {
			t.Fatalf("%s EcallPartialExtract: %v", sid, err)
		}
		partials = append(partials, part)
	}
	return partials, quorum
}

// TestBlindedExtractionEndToEnd runs the full sealed protocol at n=3 (d=1,
// quorum 3) and cross-checks the blinded result against the degraded
// recovery path: both must derive the SAME user secret key.
func TestBlindedExtractionEndToEnd(t *testing.T) {
	platform := newPlatform(t)
	encls, rec, ids := dealTestShares(t, platform, 3)
	combiner := encls[ids[0]]
	user := "alice@example.com"

	nonce := []byte("blind-round-0001")
	partials, _ := runBlindRound(t, encls, rec, ids, user, nonce)
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := combiner.EcallCombineExtract(user, priv.PublicKey(), rec.Generation, rec.Degree, nonce, partials)
	if err != nil {
		t.Fatalf("EcallCombineExtract: %v", err)
	}
	ukBlind, err := prov.Open(combiner.Scheme(), combiner.IdentityPublicKey(), priv)
	if err != nil {
		t.Fatalf("opening blinded key: %v", err)
	}

	// Recovery path with d+1 = 2 exported shares must agree.
	rnonce := []byte("recover-round-01")
	blobs := make([][]byte, 0, 2)
	for _, sid := range ids[:2] {
		blob, err := encls[sid].EcallExportShare(rnonce)
		if err != nil {
			t.Fatalf("%s EcallExportShare: %v", sid, err)
		}
		blobs = append(blobs, blob)
	}
	priv2, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	prov2, err := combiner.EcallRecoverExtract(user, priv2.PublicKey(), rnonce, rec, blobs)
	if err != nil {
		t.Fatalf("EcallRecoverExtract: %v", err)
	}
	ukRecover, err := prov2.Open(combiner.Scheme(), combiner.IdentityPublicKey(), priv2)
	if err != nil {
		t.Fatalf("opening recovery key: %v", err)
	}
	if !combiner.Scheme().P.G1.Equal(ukBlind.D, ukRecover.D) {
		t.Fatal("blinded and recovery extraction disagree on the user secret key")
	}
}

// TestPartialExtractNonceOneTimeUse: a holder combines its share under a
// given nonce exactly once — replaying the same sealed round-1
// contributions into a second EcallPartialExtract is refused, so the host
// cannot farm related partials from one blinding.
func TestPartialExtractNonceOneTimeUse(t *testing.T) {
	platform := newPlatform(t)
	encls, rec, ids := dealTestShares(t, platform, 3)
	user := "alice@example.com"
	nonce := []byte("one-time-nonce-1")

	quorum := ids[:dkg.Quorum(rec.Degree)]
	indices := make([]int, len(quorum))
	for k, sid := range quorum {
		indices[k] = rec.Index(sid)
	}
	byTarget := make(map[int]map[int][]byte)
	for _, sid := range quorum {
		out, err := encls[sid].EcallBlindRound(rec.Generation, user, nonce, indices)
		if err != nil {
			t.Fatal(err)
		}
		for target, blob := range out {
			if byTarget[target] == nil {
				byTarget[target] = make(map[int][]byte)
			}
			byTarget[target][rec.Index(sid)] = blob
		}
	}
	target := quorum[1]
	contribs := byTarget[rec.Index(target)]
	if _, err := encls[target].EcallPartialExtract(rec.Generation, user, nonce, indices, contribs); err != nil {
		t.Fatalf("first partial extract: %v", err)
	}
	if _, err := encls[target].EcallPartialExtract(rec.Generation, user, nonce, indices, contribs); !errors.Is(err, ErrNonceReplayed) {
		t.Fatalf("replayed round accepted: err = %v, want ErrNonceReplayed", err)
	}
}

// TestBlindRoundBoundToIdentity: a blinding dealt for one identity cannot
// be evaluated at another — the attack where the host replays one round's
// contributions under two ids to get r·(γ+H(id1)) and r·(γ+H(id2)) with
// the SAME r and solves linearly for γ.
func TestBlindRoundBoundToIdentity(t *testing.T) {
	platform := newPlatform(t)
	encls, rec, ids := dealTestShares(t, platform, 3)
	nonce := []byte("identity-bound-1")

	quorum := ids[:dkg.Quorum(rec.Degree)]
	indices := make([]int, len(quorum))
	for k, sid := range quorum {
		indices[k] = rec.Index(sid)
	}
	byTarget := make(map[int]map[int][]byte)
	for _, sid := range quorum {
		out, err := encls[sid].EcallBlindRound(rec.Generation, "alice@example.com", nonce, indices)
		if err != nil {
			t.Fatal(err)
		}
		for target, blob := range out {
			if byTarget[target] == nil {
				byTarget[target] = make(map[int][]byte)
			}
			byTarget[target][rec.Index(sid)] = blob
		}
	}
	target := quorum[0]
	if _, err := encls[target].EcallPartialExtract(rec.Generation, "mallory@example.com", nonce, indices, byTarget[rec.Index(target)]); !errors.Is(err, ErrSealedDataCorrupt) {
		t.Fatalf("contributions dealt for alice evaluated at mallory: err = %v, want ErrSealedDataCorrupt", err)
	}
}

// TestExtractionGenerationBound: every extraction ECALL refuses a round for
// a generation other than its committed share's, and the combiner cannot
// open partials sealed under a different generation — a holder left behind
// by a reshare fails loudly instead of corrupting the combined key.
func TestExtractionGenerationBound(t *testing.T) {
	platform := newPlatform(t)
	encls, rec, ids := dealTestShares(t, platform, 3)
	user := "alice@example.com"
	nonce := []byte("generation-bound")

	indices := []int{1, 2, 3}
	if _, err := encls[ids[0]].EcallBlindRound(rec.Generation+1, user, nonce, indices); !errors.Is(err, ErrShareGeneration) {
		t.Fatalf("blind round at wrong generation: err = %v, want ErrShareGeneration", err)
	}
	if _, err := encls[ids[0]].EcallPartialExtract(rec.Generation+1, user, nonce, indices, nil); !errors.Is(err, ErrShareGeneration) {
		t.Fatalf("partial extract at wrong generation: err = %v, want ErrShareGeneration", err)
	}

	partials, _ := runBlindRound(t, encls, rec, ids, user, []byte("gen-bound-real-1"))
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := encls[ids[0]].EcallCombineExtract(user, priv.PublicKey(), rec.Generation+1, rec.Degree, []byte("gen-bound-real-1"), partials); !errors.Is(err, ErrSealedDataCorrupt) {
		t.Fatalf("combine opened partials under the wrong generation: err = %v, want ErrSealedDataCorrupt", err)
	}
}

// TestPlatformStateRoundTrip: a platform reloaded from MarshalState opens
// blobs the original sealed (same fused sealing secret — the property a
// threshold cluster restart depends on), and corrupt state fails loudly.
func TestPlatformStateRoundTrip(t *testing.T) {
	p1 := newPlatform(t)
	e1 := p1.Launch(IBBEMeasurement())
	blob, err := e1.Seal([]byte("share material"), []byte("label"))
	if err != nil {
		t.Fatal(err)
	}

	state, err := p1.MarshalState()
	if err != nil {
		t.Fatalf("MarshalState: %v", err)
	}
	p2, err := LoadPlatform(state)
	if err != nil {
		t.Fatalf("LoadPlatform: %v", err)
	}
	if p2.ID() != p1.ID() {
		t.Fatalf("reloaded platform ID %q, want %q", p2.ID(), p1.ID())
	}
	out, err := p2.Launch(IBBEMeasurement()).Unseal(blob, []byte("label"))
	if err != nil {
		t.Fatalf("reloaded platform cannot unseal the original's blob: %v", err)
	}
	if string(out) != "share material" {
		t.Fatalf("unsealed %q", out)
	}
	// A DIFFERENT platform still cannot.
	if _, err := newPlatform(t).Launch(IBBEMeasurement()).Unseal(blob, []byte("label")); err == nil {
		t.Fatal("foreign platform unsealed the blob")
	}
	if _, err := LoadPlatform([]byte("{broken")); err == nil {
		t.Fatal("corrupt platform state accepted")
	}
}
