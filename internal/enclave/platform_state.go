// Simulated-platform persistence. Real SGX keeps the root sealing secret
// and the attestation key in hardware fuses, so they trivially survive a
// process restart; the simulation must persist them explicitly, or sealed
// blobs from a previous run — the threshold share blobs in the membership
// record, sealed MSK files — can never be opened again and a "restarted"
// process is indistinguishable from a brand-new machine.
//
// The exported state contains the platform's root secret IN THE CLEAR:
// it is the analogue of the fused hardware secret, so the file must be
// protected like one (the ibbe-cluster CLI writes it 0600). This is a
// simulation affordance only — nothing here exists on real hardware.
package enclave

import (
	"crypto/x509"
	"encoding/json"
	"fmt"
)

// platformState is the serialised form of a Platform's fused identity.
type platformState struct {
	ID         string `json:"id"`
	RootSecret []byte `json:"root_secret"`
	AttestKey  []byte `json:"attest_key"` // SEC1 DER EC private key
}

// MarshalState serialises the platform's fused identity — ID, root sealing
// secret and attestation key — so a simulated platform can be re-created
// after a process restart (LoadPlatform). EPC statistics are not part of
// the identity and are not persisted.
func (p *Platform) MarshalState() ([]byte, error) {
	keyDER, err := x509.MarshalECPrivateKey(p.attestKey)
	if err != nil {
		return nil, fmt.Errorf("enclave: marshalling attestation key: %w", err)
	}
	return json.Marshal(platformState{ID: p.id, RootSecret: p.rootSecret[:], AttestKey: keyDER})
}

// LoadPlatform rebuilds a platform from MarshalState output: same sealing
// keys (blobs sealed by the previous incarnation open again), same
// attestation key (the simulated IAS recognises it as the same machine).
func LoadPlatform(data []byte) (*Platform, error) {
	var st platformState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("enclave: platform state: %w", err)
	}
	if len(st.RootSecret) != 32 {
		return nil, fmt.Errorf("enclave: platform state root secret is %d bytes, want 32", len(st.RootSecret))
	}
	key, err := x509.ParseECPrivateKey(st.AttestKey)
	if err != nil {
		return nil, fmt.Errorf("enclave: platform state attestation key: %w", err)
	}
	p := &Platform{id: st.ID, attestKey: key, epc: &EPCStats{Limit: DefaultEPCBytes}}
	copy(p.rootSecret[:], st.RootSecret)
	return p, nil
}
