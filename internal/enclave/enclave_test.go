package enclave

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/ibbe"
	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

func newPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform("test-platform", rand.Reader)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return p
}

func newIBBE(t *testing.T, m int) (*IBBEEnclave, *ibbe.PublicKey, []byte) {
	t.Helper()
	ie, err := NewIBBEEnclave(newPlatform(t), pairing.TypeA160())
	if err != nil {
		t.Fatalf("NewIBBEEnclave: %v", err)
	}
	pk, sealed, err := ie.EcallSetup(m)
	if err != nil {
		t.Fatalf("EcallSetup: %v", err)
	}
	return ie, pk, sealed
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("member-%03d@example.com", i)
	}
	return out
}

// decryptGK plays the honest user: IBBE-decrypt the partition broadcast key,
// then unwrap the group key.
func decryptGK(t *testing.T, ie *IBBEEnclave, pk *ibbe.PublicKey, group string, user string, partMembers []string, pc *PartitionCrypto) [32]byte {
	t.Helper()
	userKey, priv := provisionUser(t, ie, user)
	_ = priv
	bk, err := ie.Scheme().Decrypt(pk, user, userKey, partMembers, pc.CT)
	if err != nil {
		t.Fatalf("user decrypt: %v", err)
	}
	gk, err := UnwrapGK(ie.Scheme().P, bk, pc.WrappedGK, group)
	if err != nil {
		t.Fatalf("UnwrapGK: %v", err)
	}
	return gk
}

// provisionUser runs the full provisioning handshake for a user.
func provisionUser(t *testing.T, ie *IBBEEnclave, user string) (*ibbe.UserKey, *ecdh.PrivateKey) {
	t.Helper()
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := ie.EcallExtractUserKey(user, priv.PublicKey())
	if err != nil {
		t.Fatalf("EcallExtractUserKey: %v", err)
	}
	uk, err := prov.Open(ie.Scheme(), ie.IdentityPublicKey(), priv)
	if err != nil {
		t.Fatalf("ProvisionedKey.Open: %v", err)
	}
	return uk, priv
}

func TestMeasureCodeDistinguishesVersions(t *testing.T) {
	if MeasureCode("a", "1") == MeasureCode("a", "2") {
		t.Fatal("different versions share a measurement")
	}
	if MeasureCode("a", "1") != MeasureCode("a", "1") {
		t.Fatal("measurement not deterministic")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p := newPlatform(t)
	e := p.Launch(MeasureCode("enclave", "1"))
	blob, err := e.Seal([]byte("state"), []byte("label"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Unseal(blob, []byte("label"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "state" {
		t.Fatal("round trip changed data")
	}
}

func TestUnsealRejectsDifferentEnclave(t *testing.T) {
	p := newPlatform(t)
	e1 := p.Launch(MeasureCode("enclave", "1"))
	e2 := p.Launch(MeasureCode("enclave", "2"))
	blob, _ := e1.Seal([]byte("secret"), []byte("l"))
	if _, err := e2.Unseal(blob, []byte("l")); !errors.Is(err, ErrSealedDataCorrupt) {
		t.Fatal("different enclave code unsealed the blob")
	}
}

func TestUnsealRejectsDifferentPlatform(t *testing.T) {
	m := MeasureCode("enclave", "1")
	e1 := newPlatform(t).Launch(m)
	e2 := newPlatform(t).Launch(m)
	blob, _ := e1.Seal([]byte("secret"), []byte("l"))
	if _, err := e2.Unseal(blob, []byte("l")); !errors.Is(err, ErrSealedDataCorrupt) {
		t.Fatal("different platform unsealed the blob")
	}
}

func TestUnsealRejectsWrongLabel(t *testing.T) {
	e := newPlatform(t).Launch(MeasureCode("enclave", "1"))
	blob, _ := e.Seal([]byte("secret"), []byte("label-a"))
	if _, err := e.Unseal(blob, []byte("label-b")); !errors.Is(err, ErrSealedDataCorrupt) {
		t.Fatal("wrong label accepted")
	}
}

func TestEcallsRequireSetup(t *testing.T) {
	ie, err := NewIBBEEnclave(newPlatform(t), pairing.TypeA160())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ie.EcallCreateGroup("g", [][]string{members(2)}); !errors.Is(err, ErrEnclaveNotInitialized) {
		t.Fatal("EcallCreateGroup before setup succeeded")
	}
	priv, _ := ecdh.P256().GenerateKey(rand.Reader)
	if _, err := ie.EcallExtractUserKey("u", priv.PublicKey()); !errors.Is(err, ErrEnclaveNotInitialized) {
		t.Fatal("EcallExtractUserKey before setup succeeded")
	}
}

func TestCreateGroupAndUserDecrypt(t *testing.T) {
	ie, pk, _ := newIBBE(t, 8)
	parts := [][]string{members(4)[:2], members(4)[2:]}
	_, outs, err := ie.EcallCreateGroup("group-1", parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("partitions out = %d, want 2", len(outs))
	}
	// A member of each partition recovers the same group key.
	gk0 := decryptGK(t, ie, pk, "group-1", parts[0][0], parts[0], &outs[0])
	gk1 := decryptGK(t, ie, pk, "group-1", parts[1][1], parts[1], &outs[1])
	if gk0 != gk1 {
		t.Fatal("partitions wrap different group keys")
	}
}

func TestCreatePartitionJoinsExistingGroup(t *testing.T) {
	ie, pk, _ := newIBBE(t, 8)
	parts := [][]string{members(2)}
	sealedGK, outs, err := ie.EcallCreateGroup("g", parts)
	if err != nil {
		t.Fatal(err)
	}
	newcomer := "late@example.com"
	pc, err := ie.EcallCreatePartition("g", sealedGK, []string{newcomer})
	if err != nil {
		t.Fatal(err)
	}
	gkOld := decryptGK(t, ie, pk, "g", parts[0][0], parts[0], &outs[0])
	gkNew := decryptGK(t, ie, pk, "g", newcomer, []string{newcomer}, pc)
	if gkOld != gkNew {
		t.Fatal("new partition wraps a different group key")
	}
}

func TestCreatePartitionRejectsForeignSealedKey(t *testing.T) {
	ie, _, _ := newIBBE(t, 8)
	sealedGK, _, err := ie.EcallCreateGroup("group-a", [][]string{members(2)})
	if err != nil {
		t.Fatal(err)
	}
	// The sealed key is bound to its group label.
	if _, err := ie.EcallCreatePartition("group-b", sealedGK, []string{"x"}); !errors.Is(err, ErrSealedDataCorrupt) {
		t.Fatal("sealed key accepted under a different group label")
	}
}

func TestAddUserToPartition(t *testing.T) {
	ie, pk, _ := newIBBE(t, 8)
	base := members(3)
	_, outs, err := ie.EcallCreateGroup("g", [][]string{base})
	if err != nil {
		t.Fatal(err)
	}
	joiner := "joiner@example.com"
	newCT, err := ie.EcallAddUserToPartition(outs[0].CT, joiner)
	if err != nil {
		t.Fatal(err)
	}
	extended := append(append([]string{}, base...), joiner)
	pc := &PartitionCrypto{CT: newCT, WrappedGK: outs[0].WrappedGK} // y unchanged
	gkJoiner := decryptGK(t, ie, pk, "g", joiner, extended, pc)
	gkOld := decryptGK(t, ie, pk, "g", base[0], extended, pc)
	if gkJoiner != gkOld {
		t.Fatal("joiner sees a different group key")
	}
}

func TestRemoveUserRekeysEverything(t *testing.T) {
	ie, pk, _ := newIBBE(t, 8)
	p0, p1 := members(4)[:2], members(4)[2:]
	_, outs, err := ie.EcallCreateGroup("g", [][]string{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	// Remove p0[1]: Algorithm 3 as the core engine drives it — one fresh
	// sealed key, then one ECALL per partition.
	sealedGK, err := ie.EcallNewGroupKey("g")
	if err != nil {
		t.Fatal(err)
	}
	affected, err := ie.EcallRemoveUsersFromPartition("g", sealedGK, outs[0].CT, []string{p0[1]})
	if err != nil {
		t.Fatal(err)
	}
	other, err := ie.EcallRekeyPartition("g", sealedGK, outs[1].CT)
	if err != nil {
		t.Fatal(err)
	}
	remaining := []string{p0[0]}
	gkA := decryptGK(t, ie, pk, "g", p0[0], remaining, affected)
	gkB := decryptGK(t, ie, pk, "g", p1[0], p1, other)
	if gkA != gkB {
		t.Fatal("partitions disagree on the new group key")
	}
	// The revoked user cannot decrypt the new metadata with her key.
	rkUK, _ := provisionUser(t, ie, p0[1])
	if bk, err := ie.Scheme().Decrypt(pk, p0[0], rkUK, remaining, affected.CT); err == nil {
		if _, err := UnwrapGK(ie.Scheme().P, bk, affected.WrappedGK, "g"); err == nil {
			t.Fatal("revoked user recovered the new group key")
		}
	}
}

func TestRemoveLastUserDropsPartition(t *testing.T) {
	// When a partition empties, the core engine deletes its record and the
	// enclave only re-keys the surviving partitions: the emptied ciphertext
	// is simply never fed back in. The survivors still rotate to a fresh key.
	ie, pk, _ := newIBBE(t, 8)
	solo := []string{"solo@example.com"}
	other := members(2)
	_, outs, err := ie.EcallCreateGroup("g", [][]string{solo, other})
	if err != nil {
		t.Fatal(err)
	}
	gkOld := decryptGK(t, ie, pk, "g", other[0], other, &outs[1])
	sealedGK, err := ie.EcallNewGroupKey("g")
	if err != nil {
		t.Fatal(err)
	}
	surv, err := ie.EcallRekeyPartition("g", sealedGK, outs[1].CT)
	if err != nil {
		t.Fatal(err)
	}
	gk := decryptGK(t, ie, pk, "g", other[0], other, surv)
	if gk == [32]byte{} || gk == gkOld {
		t.Fatal("survivors did not rotate to a fresh group key")
	}
}

func TestRekeyGroupRotatesKey(t *testing.T) {
	ie, pk, _ := newIBBE(t, 8)
	grp := members(3)
	_, outs, err := ie.EcallCreateGroup("g", [][]string{grp})
	if err != nil {
		t.Fatal(err)
	}
	gk1 := decryptGK(t, ie, pk, "g", grp[0], grp, &outs[0])
	sealedGK, err := ie.EcallNewGroupKey("g")
	if err != nil {
		t.Fatal(err)
	}
	out2, err := ie.EcallRekeyPartition("g", sealedGK, outs[0].CT)
	if err != nil {
		t.Fatal(err)
	}
	gk2 := decryptGK(t, ie, pk, "g", grp[0], grp, out2)
	if gk1 == gk2 {
		t.Fatal("rekey did not rotate the group key")
	}
}

func TestRestoreAfterRestart(t *testing.T) {
	platform := newPlatform(t)
	ie1, err := NewIBBEEnclave(platform, pairing.TypeA160())
	if err != nil {
		t.Fatal(err)
	}
	pk, sealedMSK, err := ie1.EcallSetup(8)
	if err != nil {
		t.Fatal(err)
	}
	grp := members(2)
	_, outs, err := ie1.EcallCreateGroup("g", [][]string{grp})
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a new enclave instance with the same code measurement on the
	// same platform restores from the sealed master secret.
	ie2, err := NewIBBEEnclave(platform, pairing.TypeA160())
	if err != nil {
		t.Fatal(err)
	}
	if err := ie2.EcallRestore(sealedMSK, pk); err != nil {
		t.Fatalf("EcallRestore: %v", err)
	}
	// The restored enclave can extend the old group's ciphertext.
	newCT, err := ie2.EcallAddUserToPartition(outs[0].CT, "post-restart@example.com")
	if err != nil {
		t.Fatal(err)
	}
	extended := append(append([]string{}, grp...), "post-restart@example.com")
	// User keys extracted before and after the restart are interchangeable.
	uk, _ := provisionUser(t, ie1, grp[0])
	bk, err := ie2.Scheme().Decrypt(pk, grp[0], uk, extended, newCT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnwrapGK(ie2.Scheme().P, bk, outs[0].WrappedGK, "g"); err != nil {
		t.Fatalf("cross-restart decrypt failed: %v", err)
	}
}

func TestRestoreRejectsForeignBlob(t *testing.T) {
	ie, pk, _ := newIBBE(t, 4)
	other, err := NewIBBEEnclave(newPlatform(t), pairing.TypeA160())
	if err != nil {
		t.Fatal(err)
	}
	_, sealed, err := ie.EcallSetup(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.EcallRestore(sealed, pk); !errors.Is(err, ErrSealedDataCorrupt) {
		t.Fatal("foreign platform restored the master secret")
	}
}

func TestProvisionedKeySignatureChecked(t *testing.T) {
	ie, _, _ := newIBBE(t, 4)
	priv, _ := ecdh.P256().GenerateKey(rand.Reader)
	prov, err := ie.EcallExtractUserKey("eve@example.com", priv.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	// Tampered box must be rejected before decryption.
	prov.Box[len(prov.Box)-1] ^= 1
	if _, err := prov.Open(ie.Scheme(), ie.IdentityPublicKey(), priv); err == nil {
		t.Fatal("tampered provisioned key accepted")
	}
}

func TestProvisionedKeyWrongEnclaveKey(t *testing.T) {
	ie, _, _ := newIBBE(t, 4)
	rogue, err := NewIBBEEnclave(newPlatform(t), pairing.TypeA160())
	if err != nil {
		t.Fatal(err)
	}
	priv, _ := ecdh.P256().GenerateKey(rand.Reader)
	prov, err := ie.EcallExtractUserKey("u", priv.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := prov.Verify(rogue.IdentityPublicKey()); err == nil {
		t.Fatal("signature verified under the wrong enclave key")
	}
}

func TestEPCAccounting(t *testing.T) {
	ie, _, _ := newIBBE(t, 16)
	if _, _, err := ie.EcallCreateGroup("g", [][]string{members(16)}); err != nil {
		t.Fatal(err)
	}
	stats := ie.Enclave().Platform().EPC()
	if stats.PeakResident == 0 {
		t.Fatal("ECALLs did not register EPC usage")
	}
	if stats.Resident != 0 {
		t.Fatalf("resident memory leaked: %d bytes", stats.Resident)
	}
}

func TestEPCPaging(t *testing.T) {
	p := newPlatform(t)
	e := p.Launch(MeasureCode("x", "1"))
	e.epcTouch(DefaultEPCBytes+4096, func() {})
	stats := p.EPC()
	if stats.PageFaults == 0 || stats.PagedBytes == 0 {
		t.Fatal("exceeding the EPC limit did not record paging")
	}
}

func TestMSKSerdeRejectsGarbage(t *testing.T) {
	s := ibbe.NewScheme(pairing.TypeA160())
	if _, err := unmarshalMSK(s, []byte{1, 2, 3}); err == nil {
		t.Fatal("short MSK accepted")
	}
}
