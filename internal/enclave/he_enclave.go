package enclave

import (
	"crypto/rand"
	"fmt"
	"sync"

	"github.com/ibbesgx/ibbesgx/internal/hybrid"
	"github.com/ibbesgx/ibbesgx/internal/kdf"
)

// HEEnclave runs the Hybrid Encryption baseline *inside* the enclave — the
// integration §III-B contemplates ("administrators could be asked to run HE
// within an SGX enclave, thus protecting the discovery of gk") and then
// argues against: because HE's group metadata grows linearly with
// membership, the enclave working set grows with the group and collides
// with the EPC, whereas IBBE-SGX's working set is constant per partition.
//
// This type exists to measure exactly that effect (see the EPC experiment
// in internal/benchmark): it gives HE the same zero-knowledge guarantee as
// IBBE-SGX, with group keys and metadata processed only inside the
// boundary, and charges the full metadata working set to the EPC model.
type HEEnclave struct {
	enc *Enclave
	he  *hybrid.HEPKI

	mu sync.Mutex
	// groups holds the plaintext group keys — inside the enclave only.
	groups map[string][kdf.KeySize]byte
	md     map[string]*hybrid.Metadata
}

// HECodeName and HECodeVersion identify the HE enclave binary.
const (
	HECodeName    = "he-sgx-enclave"
	HECodeVersion = "1.0.0"
)

// HEMeasurement returns the expected measurement of the HE enclave code.
func HEMeasurement() Measurement { return MeasureCode(HECodeName, HECodeVersion) }

// NewHEEnclave launches the HE baseline inside an enclave on the platform,
// wrapping the given PKI registry.
func NewHEEnclave(p *Platform, pki *hybrid.PKI) *HEEnclave {
	return &HEEnclave{
		enc:    p.Launch(HEMeasurement()),
		he:     hybrid.NewHEPKI(pki),
		groups: make(map[string][kdf.KeySize]byte),
		md:     make(map[string]*hybrid.Metadata),
	}
}

// Enclave exposes the launched enclave (for attestation and EPC stats).
func (h *HEEnclave) Enclave() *Enclave { return h.enc }

// EcallCreateGroup draws gk inside the enclave and wraps it per member.
// The entire linear metadata is enclave-resident during the call — the EPC
// pressure §III-B worries about.
func (h *HEEnclave) EcallCreateGroup(group string, members []string) (*hybrid.Metadata, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var (
		md  *hybrid.Metadata
		err error
	)
	h.enc.epcTouch(heWorkingSet(len(members)), func() {
		var gk [kdf.KeySize]byte
		gk, md, err = h.he.CreateGroup(members, rand.Reader)
		if err == nil {
			h.groups[group] = gk
		}
	})
	if err != nil {
		return nil, err
	}
	h.md[group] = md
	return md, nil
}

// EcallAddUser wraps the resident group key for one more member.
func (h *HEEnclave) EcallAddUser(group, user string) (*hybrid.Metadata, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	gk, ok := h.groups[group]
	if !ok {
		return nil, fmt.Errorf("enclave: no HE group %s", group)
	}
	md := h.md[group]
	var err error
	h.enc.epcTouch(heWorkingSet(len(md.Entries)+1), func() {
		err = h.he.AddUser(md, gk, user, rand.Reader)
	})
	if err != nil {
		return nil, err
	}
	return md, nil
}

// EcallRemoveUser revokes a member: a fresh gk is drawn inside and
// re-wrapped for every remaining member — O(n) work over an O(n)-sized
// enclave-resident metadata.
func (h *HEEnclave) EcallRemoveUser(group, user string) (*hybrid.Metadata, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	md, ok := h.md[group]
	if !ok {
		return nil, fmt.Errorf("enclave: no HE group %s", group)
	}
	var (
		gk  [kdf.KeySize]byte
		err error
	)
	h.enc.epcTouch(heWorkingSet(len(md.Entries)), func() {
		gk, err = h.he.RemoveUser(md, user, rand.Reader)
	})
	if err != nil {
		return nil, err
	}
	h.groups[group] = gk
	return md, nil
}

// Metadata returns the current group metadata (public material).
func (h *HEEnclave) Metadata(group string) (*hybrid.Metadata, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	md, ok := h.md[group]
	return md, ok
}

// heWorkingSet estimates the enclave-resident bytes for an HE membership
// operation: the full per-member metadata (ECIES box ≈ 65+32+28 bytes plus
// identity bookkeeping).
func heWorkingSet(members int) int64 {
	const perEntry = 65 + kdf.KeySize + kdf.Overhead + 64
	return int64(members) * perEntry
}
