package enclave

import (
	"errors"
	"sync"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

func TestNewEcallsRequireSetup(t *testing.T) {
	ie, err := NewIBBEEnclave(newPlatform(t), pairing.TypeA160())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ie.EcallNewGroupKey("g"); !errors.Is(err, ErrEnclaveNotInitialized) {
		t.Fatal("EcallNewGroupKey before setup succeeded")
	}
	if _, err := ie.EcallRekeyPartition("g", nil, nil); !errors.Is(err, ErrEnclaveNotInitialized) {
		t.Fatal("EcallRekeyPartition before setup succeeded")
	}
	if _, err := ie.EcallRemoveUsersFromPartition("g", nil, nil, nil); !errors.Is(err, ErrEnclaveNotInitialized) {
		t.Fatal("EcallRemoveUsersFromPartition before setup succeeded")
	}
	if _, err := ie.EcallAddUsersToPartition(nil, nil); !errors.Is(err, ErrEnclaveNotInitialized) {
		t.Fatal("EcallAddUsersToPartition before setup succeeded")
	}
}

// TestPerPartitionEcallsComposeLikeBatch checks the split ECALL surface the
// parallel engine uses composes into a coherent Algorithm 3: new sealed gk,
// removal+re-key on the affected partition, plain re-key on the other, and
// both wrap one common group key.
func TestPerPartitionEcallsComposeLikeBatch(t *testing.T) {
	ie, pk, _ := newIBBE(t, 4)
	partA := members(4)[:2]
	partB := members(4)[2:]
	_, outs, err := ie.EcallCreateGroup("g", [][]string{partA, partB})
	if err != nil {
		t.Fatal(err)
	}

	sealedGK, err := ie.EcallNewGroupKey("g")
	if err != nil {
		t.Fatal(err)
	}
	gone := partA[0]
	newA, err := ie.EcallRemoveUsersFromPartition("g", sealedGK, outs[0].CT, []string{gone})
	if err != nil {
		t.Fatal(err)
	}
	newB, err := ie.EcallRekeyPartition("g", sealedGK, outs[1].CT)
	if err != nil {
		t.Fatal(err)
	}

	gkA := decryptGK(t, ie, pk, "g", partA[1], partA[1:], newA)
	gkB := decryptGK(t, ie, pk, "g", partB[0], partB, newB)
	if gkA != gkB {
		t.Fatal("per-partition ECALLs wrap different group keys")
	}
	// The removed user's old key no longer opens the affected partition.
	uk, _ := provisionUser(t, ie, gone)
	if _, err := ie.Scheme().Decrypt(pk, gone, uk, partA[1:], newA.CT); err == nil {
		t.Fatal("removed user still in the receiver set")
	}
	// A foreign group's sealed key is rejected by the per-partition ECALLs.
	if _, err := ie.EcallRekeyPartition("other", sealedGK, outs[1].CT); err == nil {
		t.Fatal("sealed key accepted under the wrong group label")
	}
}

// TestConcurrentEcalls hammers read-path ECALLs from many goroutines — the
// -race gate for the RWMutex conversion that lets the core worker pool fan
// out per-partition work.
func TestConcurrentEcalls(t *testing.T) {
	ie, pk, _ := newIBBE(t, 4)
	sealedGK, err := ie.EcallNewGroupKey("g")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	parts := make([]*PartitionCrypto, workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := []string{members(workers * 2)[2*w], members(workers * 2)[2*w+1]}
			pc, err := ie.EcallCreatePartition("g", sealedGK, mine)
			if err != nil {
				errs <- err
				return
			}
			if pc, err = ie.EcallRekeyPartition("g", sealedGK, pc.CT); err != nil {
				errs <- err
				return
			}
			parts[w] = pc
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All concurrently produced partitions wrap the same group key.
	var ref [32]byte
	for w := 0; w < workers; w++ {
		mine := []string{members(workers * 2)[2*w], members(workers * 2)[2*w+1]}
		gk := decryptGK(t, ie, pk, "g", mine[0], mine, parts[w])
		if w == 0 {
			ref = gk
		} else if gk != ref {
			t.Fatalf("worker %d wrapped a different group key", w)
		}
	}
}
