package enclave

import (
	"crypto/rand"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/hybrid"
)

func newHEEnclave(t *testing.T, members []string) (*HEEnclave, *hybrid.PKI) {
	t.Helper()
	pki := hybrid.NewPKI()
	for _, m := range members {
		if err := pki.Register(m, rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	return NewHEEnclave(newPlatform(t), pki), pki
}

func TestHEEnclaveLifecycle(t *testing.T) {
	ms := members(4)
	he, pkiReg := newHEEnclave(t, ms)
	md, err := he.EcallCreateGroup("g", ms[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(md.Entries) != 3 {
		t.Fatalf("entries = %d", len(md.Entries))
	}
	// Members decrypt the group key outside the enclave with their PKI keys.
	decryptAs := func(md *hybrid.Metadata, id string) [32]byte {
		t.Helper()
		gk, err := hybrid.NewHEPKI(pkiReg).Decrypt(md, id)
		if err != nil {
			t.Fatalf("Decrypt(%s): %v", id, err)
		}
		return gk
	}
	gk0 := decryptAs(md, ms[0])
	gk1 := decryptAs(md, ms[1])
	if gk0 != gk1 {
		t.Fatal("members disagree")
	}

	// Add: same key extended to the new member.
	md, err = he.EcallAddUser("g", ms[3])
	if err != nil {
		t.Fatal(err)
	}
	if decryptAs(md, ms[3]) != gk0 {
		t.Fatal("added member got different key")
	}

	// Remove: key rotates, revoked member loses the entry.
	md, err = he.EcallRemoveUser("g", ms[0])
	if err != nil {
		t.Fatal(err)
	}
	gkNew := decryptAs(md, ms[1])
	if gkNew == gk0 {
		t.Fatal("remove did not rotate key")
	}
	if _, err := hybrid.NewHEPKI(pkiReg).Decrypt(md, ms[0]); err == nil {
		t.Fatal("revoked member still has an entry")
	}
}

func TestHEEnclaveUnknownGroup(t *testing.T) {
	he, _ := newHEEnclave(t, members(1))
	if _, err := he.EcallAddUser("nope", "x"); err == nil {
		t.Fatal("unknown group accepted on add")
	}
	if _, err := he.EcallRemoveUser("nope", "x"); err == nil {
		t.Fatal("unknown group accepted on remove")
	}
	if _, ok := he.Metadata("nope"); ok {
		t.Fatal("metadata for unknown group")
	}
}

func TestHEEnclaveWorkingSetLinear(t *testing.T) {
	// The enclave working set grows linearly with the group — the §III-B
	// effect the EPC experiment quantifies.
	small := members(8)
	heSmall, _ := newHEEnclave(t, small)
	if _, err := heSmall.EcallCreateGroup("g", small); err != nil {
		t.Fatal(err)
	}
	peakSmall := heSmall.Enclave().Platform().EPC().PeakResident

	large := members(32)
	heLarge, _ := newHEEnclave(t, large)
	if _, err := heLarge.EcallCreateGroup("g", large); err != nil {
		t.Fatal(err)
	}
	peakLarge := heLarge.Enclave().Platform().EPC().PeakResident

	if peakLarge != 4*peakSmall {
		t.Fatalf("HE working set not linear: %d vs %d", peakSmall, peakLarge)
	}
}

func TestIBBEEnclaveWorkingSetBoundedByPartition(t *testing.T) {
	// Creating more partitions must not grow the peak working set: the
	// enclave streams one partition at a time.
	ie1, _, _ := newIBBE(t, 4)
	if _, _, err := ie1.EcallCreateGroup("g", [][]string{members(4)}); err != nil {
		t.Fatal(err)
	}
	peak1 := ie1.Enclave().Platform().EPC().PeakResident

	ie8, _, _ := newIBBE(t, 4)
	parts := make([][]string, 8)
	all := make([]string, 32)
	for i := range all {
		all[i] = members(32)[i]
	}
	for i := range parts {
		parts[i] = all[i*4 : (i+1)*4]
	}
	if _, _, err := ie8.EcallCreateGroup("g", parts); err != nil {
		t.Fatal(err)
	}
	peak8 := ie8.Enclave().Platform().EPC().PeakResident

	if peak8 > 2*peak1 {
		t.Fatalf("IBBE working set grew with partition count: %d vs %d", peak1, peak8)
	}
}
