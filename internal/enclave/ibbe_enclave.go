package enclave

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ibbesgx/ibbesgx/internal/hybrid"
	"github.com/ibbesgx/ibbesgx/internal/ibbe"
	"github.com/ibbesgx/ibbesgx/internal/kdf"
	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

// CodeName and CodeVersion identify the IBBE enclave binary; its measurement
// is what the Auditor of Fig. 3 compares against the expected value.
const (
	CodeName    = "ibbe-sgx-enclave"
	CodeVersion = "1.0.0"
)

// IBBEMeasurement returns the expected measurement of the IBBE enclave code.
func IBBEMeasurement() Measurement { return MeasureCode(CodeName, CodeVersion) }

// PartitionCrypto is the per-partition public output of the enclave: the
// IBBE broadcast ciphertext cᵢ and the group key wrapped under the partition
// broadcast key, yᵢ = AES(SHA(bkᵢ), gk) — the (cᵢ, yᵢ) pairs of Fig. 4.
type PartitionCrypto struct {
	CT        *ibbe.Ciphertext
	WrappedGK []byte
}

// IBBEEnclave is the enclave-resident IBBE-SGX code: the only holder of the
// master secret key and the plaintext group keys. Every exported method is
// an ECALL; none of them ever returns the master secret or a plaintext group
// key, which is the paper's zero-knowledge guarantee against curious
// administrators. Safe for concurrent use: like a multi-threaded SGX enclave
// with several TCS slots, independent ECALLs proceed in parallel. Only
// EcallSetup/EcallRestore write the key material; every other ECALL takes a
// read lock, and the scheme underneath is stateless.
type IBBEEnclave struct {
	enc    *Enclave
	scheme *ibbe.Scheme

	// Obs, when set, receives the wall-clock duration of each group-state
	// ECALL, keyed by a short call name ("extract", "rekey", ...). The
	// observability plane feeds these into per-call latency histograms; an
	// enclave cannot import the registry itself (the trust boundary points
	// the other way), so the hook is a plain function set at mint time.
	Obs func(call string, seconds float64)

	mu  sync.RWMutex
	msk *ibbe.MasterSecretKey
	pk  *ibbe.PublicKey

	// thr is the enclave's threshold share of γ when the cluster runs in
	// DKG mode (msk is then nil: the full secret never rests here).
	// pendingThr stages an adopted-but-uncommitted reshare so a publish
	// failure can roll back to the active share (see EcallAdoptReshare).
	thr        *thresholdShare
	pendingThr *thresholdShare

	// usedNonces/nonceOrder are the bounded replay ledger for blinded
	// extractions (see EcallPartialExtract); nonceMu guards them separately
	// because partial extraction only holds mu for reading.
	nonceMu    sync.Mutex
	usedNonces map[string]struct{}
	nonceOrder []string

	// idKey is the enclave identity key generated at launch (Fig. 3 step 0);
	// its public half is certified by the Auditor/CA after attestation.
	idKey *ecdsa.PrivateKey
}

// NewIBBEEnclave launches the IBBE enclave code on a platform and generates
// the enclave identity key pair inside.
func NewIBBEEnclave(p *Platform, params *pairing.Params) (*IBBEEnclave, error) {
	idKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclave: generating identity key: %w", err)
	}
	return &IBBEEnclave{
		enc:    p.Launch(IBBEMeasurement()),
		scheme: ibbe.NewScheme(params),
		idKey:  idKey,
	}, nil
}

// Enclave exposes the underlying launched enclave (for attestation).
func (ie *IBBEEnclave) Enclave() *Enclave { return ie.enc }

// timeEcall times one ECALL for the Obs hook; use as
// `defer ie.timeEcall("extract")()`. Free when no hook is installed.
func (ie *IBBEEnclave) timeEcall(call string) func() {
	obs := ie.Obs
	if obs == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { obs(call, time.Since(t0).Seconds()) }
}

// Scheme exposes the (stateless) IBBE scheme, e.g. to attach Metrics.
func (ie *IBBEEnclave) Scheme() *ibbe.Scheme { return ie.scheme }

// IdentityPublicKey returns the enclave's public identity key; REPORTDATA of
// attestation quotes binds to its hash, and the CA certifies it.
func (ie *IBBEEnclave) IdentityPublicKey() *ecdsa.PublicKey {
	return &ie.idKey.PublicKey
}

// IdentityKeyHash returns the SHA-256 of the marshalled identity public key,
// the value embedded as quote REPORTDATA.
func (ie *IBBEEnclave) IdentityKeyHash() [32]byte {
	b := elliptic.MarshalCompressed(elliptic.P256(), ie.idKey.PublicKey.X, ie.idKey.PublicKey.Y)
	return sha256.Sum256(b)
}

// EcallSetup runs the IBBE system setup for maximal partition size m. The
// master secret stays inside; the public key and a sealed copy of MSK (for
// restart persistence) are returned. This is the Fig. 6a operation.
func (ie *IBBEEnclave) EcallSetup(m int) (*ibbe.PublicKey, []byte, error) {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	var (
		msk *ibbe.MasterSecretKey
		pk  *ibbe.PublicKey
		err error
	)
	ie.enc.epcTouch(int64(m)*int64(ie.scheme.P.G1.PointLen()), func() {
		msk, pk, err = ie.scheme.Setup(m, rand.Reader)
	})
	if err != nil {
		return nil, nil, err
	}
	ie.msk = msk
	ie.pk = pk
	sealed, err := ie.sealMSKLocked()
	if err != nil {
		return nil, nil, err
	}
	return pk, sealed, nil
}

// EcallRestore reloads a previously sealed master secret (e.g. after an
// enclave restart) together with the matching public key.
func (ie *IBBEEnclave) EcallRestore(sealedMSK []byte, pk *ibbe.PublicKey) error {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	raw, err := ie.enc.Unseal(sealedMSK, []byte("ibbe-msk"))
	if err != nil {
		return err
	}
	msk, err := unmarshalMSK(ie.scheme, raw)
	if err != nil {
		return err
	}
	ie.msk = msk
	ie.pk = pk
	return nil
}

// EcallExtractUserKey derives the IBBE user secret key for an identity and
// returns it wrapped for the user: ECIES to the user's public key plus an
// ECDSA signature by the enclave identity key over the box (Fig. 3 step 4).
// The plaintext user key never crosses the boundary.
func (ie *IBBEEnclave) EcallExtractUserKey(id string, userPub *ecdh.PublicKey) (*ProvisionedKey, error) {
	defer ie.timeEcall("extract")()
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.msk == nil {
		if ie.thr != nil {
			return nil, ErrThresholdMode
		}
		return nil, ErrEnclaveNotInitialized
	}
	uk, err := ie.scheme.Extract(ie.msk, id)
	if err != nil {
		return nil, err
	}
	return ie.provisionLocked(id, uk, userPub)
}

// provisionLocked wraps an extracted user key for delivery: ECIES to the
// user's public key, then an ECDSA signature by the enclave identity key.
// Callers hold ie.mu (read or write).
func (ie *IBBEEnclave) provisionLocked(id string, uk *ibbe.UserKey, userPub *ecdh.PublicKey) (*ProvisionedKey, error) {
	box, err := hybrid.SealECIES(userPub, ie.scheme.MarshalUserKey(uk), []byte("usk|"+id), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclave: wrapping user key: %w", err)
	}
	digest := provisionDigest(id, box)
	sig, err := ecdsa.SignASN1(rand.Reader, ie.idKey, digest[:])
	if err != nil {
		return nil, fmt.Errorf("enclave: signing provisioned key: %w", err)
	}
	return &ProvisionedKey{ID: id, Box: box, Sig: sig}, nil
}

// EcallCreateGroup implements the enclaved body of Algorithm 1: draw a fresh
// group key, create an IBBE partition ciphertext per member slice, wrap gk
// under each partition broadcast key, and seal gk for the administrator's
// cache. groupLabel binds the wrapped keys to the group.
func (ie *IBBEEnclave) EcallCreateGroup(groupLabel string, partitions [][]string) ([]byte, []PartitionCrypto, error) {
	defer ie.timeEcall("create_group")()
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.pk == nil {
		return nil, nil, ErrEnclaveNotInitialized
	}
	gk, err := kdf.RandomKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	// Partitions are processed one at a time so the enclave working set is
	// bounded by a single partition regardless of the group size — the
	// §III-B property that lets IBBE-SGX stay clear of the EPC limit.
	outs := make([]PartitionCrypto, 0, len(partitions))
	for _, members := range partitions {
		var (
			pc       *PartitionCrypto
			innerErr error
		)
		ie.enc.epcTouch(workingSet([][]string{members}), func() {
			pc, innerErr = ie.createPartitionLocked(groupLabel, members, gk)
		})
		if innerErr != nil {
			return nil, nil, innerErr
		}
		outs = append(outs, *pc)
	}
	sealedGK, err := ie.sealGKLocked(groupLabel, gk)
	if err != nil {
		return nil, nil, err
	}
	return sealedGK, outs, nil
}

// EcallCreatePartition implements the new-partition arm of Algorithm 2
// (lines 3–7): unseal the current group key and wrap it under a brand-new
// partition's broadcast key.
func (ie *IBBEEnclave) EcallCreatePartition(groupLabel string, sealedGK []byte, members []string) (*PartitionCrypto, error) {
	defer ie.timeEcall("create_partition")()
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.pk == nil {
		return nil, ErrEnclaveNotInitialized
	}
	gk, err := ie.unsealGKLocked(groupLabel, sealedGK)
	if err != nil {
		return nil, err
	}
	var (
		pc       *PartitionCrypto
		innerErr error
	)
	ie.enc.epcTouch(workingSet([][]string{members}), func() {
		pc, innerErr = ie.createPartitionLocked(groupLabel, members, gk)
	})
	if innerErr != nil {
		return nil, innerErr
	}
	return pc, nil
}

// EcallAddUserToPartition implements the existing-partition arm of
// Algorithm 2 (lines 9–12): extend the partition ciphertext by the new user
// in O(1). The broadcast key — and therefore the wrapped group key yᵢ — is
// unchanged. It is the batch ECALL with a single joiner.
func (ie *IBBEEnclave) EcallAddUserToPartition(ct *ibbe.Ciphertext, newUser string) (*ibbe.Ciphertext, error) {
	return ie.EcallAddUsersToPartition(ct, []string{newUser})
}

// EcallAddUsersToPartition is the batched form of EcallAddUserToPartition:
// it extends the partition ciphertext by every new user in one ECALL, with a
// constant number of exponentiations for the whole batch (the per-user
// exponents fold into one Z_r product inside the enclave).
func (ie *IBBEEnclave) EcallAddUsersToPartition(ct *ibbe.Ciphertext, newUsers []string) (*ibbe.Ciphertext, error) {
	defer ie.timeEcall("add_users")()
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.msk == nil {
		// The O(1) incremental extension multiplies by (γ+H(id)) and needs γ;
		// a threshold shard rebuilds the partition classically instead (the
		// core manager routes around this via HasMasterSecret).
		if ie.thr != nil {
			return nil, ErrThresholdMode
		}
		return nil, ErrEnclaveNotInitialized
	}
	return ie.scheme.AddUsers(ie.msk, ct, newUsers), nil
}

// EcallNewGroupKey draws a fresh group key for a group and returns it sealed
// — the first step of Algorithm 3 and of a group re-key, split out as its
// own ECALL so the per-partition re-keying work can be fanned out across
// concurrent ECALLs. The plaintext gk never leaves the enclave; workers pass
// the sealed blob back in.
func (ie *IBBEEnclave) EcallNewGroupKey(groupLabel string) ([]byte, error) {
	defer ie.timeEcall("new_group_key")()
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.pk == nil {
		return nil, ErrEnclaveNotInitialized
	}
	gk, err := kdf.RandomKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return ie.sealGKLocked(groupLabel, gk)
}

// EcallRekeyPartition re-keys one partition under the (sealed) current group
// key: fresh broadcast key in O(1), new wrapped gk. It is the per-partition
// unit of Algorithm 3 and §A-G that the core worker pool parallelises.
func (ie *IBBEEnclave) EcallRekeyPartition(groupLabel string, sealedGK []byte, ct *ibbe.Ciphertext) (*PartitionCrypto, error) {
	defer ie.timeEcall("rekey")()
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.pk == nil {
		return nil, ErrEnclaveNotInitialized
	}
	gk, err := ie.unsealGKLocked(groupLabel, sealedGK)
	if err != nil {
		return nil, err
	}
	var (
		pc       *PartitionCrypto
		innerErr error
	)
	ie.enc.epcTouch(int64(ie.scheme.CiphertextLen()), func() {
		bk, newCT, err := ie.scheme.Rekey(ie.pk, ct, rand.Reader)
		if err != nil {
			innerErr = err
			return
		}
		y, err := wrapGK(ie.scheme.P, bk, gk, groupLabel)
		if err != nil {
			innerErr = err
			return
		}
		pc = &PartitionCrypto{CT: newCT, WrappedGK: y}
	})
	if innerErr != nil {
		return nil, innerErr
	}
	return pc, nil
}

// EcallRemoveUsersFromPartition removes a batch of users from one partition
// ciphertext and re-keys it under the (sealed) new group key — the affected-
// partition arm of Algorithm 3, batched: the whole removal costs a constant
// number of exponentiations regardless of how many users leave.
func (ie *IBBEEnclave) EcallRemoveUsersFromPartition(groupLabel string, sealedGK []byte, ct *ibbe.Ciphertext, removed []string) (*PartitionCrypto, error) {
	defer ie.timeEcall("remove_users")()
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	if ie.msk == nil {
		// Incremental removal divides out (γ+H(id)) terms and needs γ; a
		// threshold shard rebuilds the shrunken partition classically.
		if ie.thr != nil {
			return nil, ErrThresholdMode
		}
		return nil, ErrEnclaveNotInitialized
	}
	gk, err := ie.unsealGKLocked(groupLabel, sealedGK)
	if err != nil {
		return nil, err
	}
	var (
		pc       *PartitionCrypto
		innerErr error
	)
	ie.enc.epcTouch(int64(ie.scheme.CiphertextLen()), func() {
		bk, newCT, err := ie.scheme.RemoveUsers(ie.msk, ie.pk, ct, removed, rand.Reader)
		if err != nil {
			innerErr = err
			return
		}
		y, err := wrapGK(ie.scheme.P, bk, gk, groupLabel)
		if err != nil {
			innerErr = err
			return
		}
		pc = &PartitionCrypto{CT: newCT, WrappedGK: y}
	})
	if innerErr != nil {
		return nil, innerErr
	}
	return pc, nil
}

// PublicKey returns the system public key (nil before EcallSetup).
func (ie *IBBEEnclave) PublicKey() *ibbe.PublicKey {
	ie.mu.RLock()
	defer ie.mu.RUnlock()
	return ie.pk
}

// createPartitionLocked builds one partition's (cᵢ, yᵢ) pair. With the full
// master secret it uses the O(|S|) MSK-accelerated encryption; a threshold
// shard (share only, no γ) falls back to classic public-key encryption,
// which costs O(|S|²) in the partition size but needs nothing secret.
func (ie *IBBEEnclave) createPartitionLocked(groupLabel string, members []string, gk [kdf.KeySize]byte) (*PartitionCrypto, error) {
	var (
		bk  *ibbe.BroadcastKey
		ct  *ibbe.Ciphertext
		err error
	)
	if ie.msk != nil {
		bk, ct, err = ie.scheme.EncryptMSK(ie.msk, ie.pk, members, rand.Reader)
	} else {
		bk, ct, err = ie.scheme.EncryptClassic(ie.pk, members, rand.Reader)
	}
	if err != nil {
		return nil, err
	}
	y, err := wrapGK(ie.scheme.P, bk, gk, groupLabel)
	if err != nil {
		return nil, err
	}
	return &PartitionCrypto{CT: ct, WrappedGK: y}, nil
}

func (ie *IBBEEnclave) sealMSKLocked() ([]byte, error) {
	return ie.enc.Seal(marshalMSK(ie.scheme, ie.msk), []byte("ibbe-msk"))
}

func (ie *IBBEEnclave) sealGKLocked(groupLabel string, gk [kdf.KeySize]byte) ([]byte, error) {
	return ie.enc.Seal(gk[:], []byte("ibbe-gk|"+groupLabel))
}

func (ie *IBBEEnclave) unsealGKLocked(groupLabel string, sealed []byte) ([kdf.KeySize]byte, error) {
	var gk [kdf.KeySize]byte
	raw, err := ie.enc.Unseal(sealed, []byte("ibbe-gk|"+groupLabel))
	if err != nil {
		return gk, err
	}
	if len(raw) != kdf.KeySize {
		return gk, errors.New("enclave: sealed group key has wrong length")
	}
	copy(gk[:], raw)
	return gk, nil
}

// wrapGK computes yᵢ = AES-GCM(SHA-256(bk), gk) — the sgx_aes(sgx_sha(b), gk)
// step of Algorithms 1–3. UnwrapGK is its user-side inverse.
func wrapGK(p *pairing.Params, bk *ibbe.BroadcastKey, gk [kdf.KeySize]byte, groupLabel string) ([]byte, error) {
	return kdf.Seal(p.GTHash(bk), gk[:], []byte("gk|"+groupLabel), rand.Reader)
}

// UnwrapGK recovers the group key from yᵢ with a decrypted partition
// broadcast key. It runs on the client, outside any enclave.
func UnwrapGK(p *pairing.Params, bk *ibbe.BroadcastKey, wrapped []byte, groupLabel string) ([kdf.KeySize]byte, error) {
	var gk [kdf.KeySize]byte
	raw, err := kdf.Open(p.GTHash(bk), wrapped, []byte("gk|"+groupLabel))
	if err != nil {
		return gk, fmt.Errorf("enclave: unwrapping group key: %w", err)
	}
	if len(raw) != kdf.KeySize {
		return gk, errors.New("enclave: wrapped group key has wrong length")
	}
	copy(gk[:], raw)
	return gk, nil
}

// ProvisionedKey is a user secret key in transit: ECIES-wrapped to the user
// and signed by the certified enclave identity key.
type ProvisionedKey struct {
	ID  string
	Box []byte
	Sig []byte
}

// Verify checks the enclave signature with the certified public key.
func (pk *ProvisionedKey) Verify(enclaveKey *ecdsa.PublicKey) error {
	digest := provisionDigest(pk.ID, pk.Box)
	if !ecdsa.VerifyASN1(enclaveKey, digest[:], pk.Sig) {
		return errors.New("enclave: provisioned key signature invalid")
	}
	return nil
}

// Open verifies the signature and unwraps the user key with the user's
// ECDH private key.
func (pk *ProvisionedKey) Open(s *ibbe.Scheme, enclaveKey *ecdsa.PublicKey, userPriv *ecdh.PrivateKey) (*ibbe.UserKey, error) {
	if err := pk.Verify(enclaveKey); err != nil {
		return nil, err
	}
	raw, err := hybrid.OpenECIES(userPriv, pk.Box, []byte("usk|"+pk.ID))
	if err != nil {
		return nil, fmt.Errorf("enclave: unwrapping user key: %w", err)
	}
	return s.UnmarshalUserKey(raw)
}

func provisionDigest(id string, box []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("ibbe-provision-v1|"))
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write(box)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// marshalMSK serialises the master secret for sealing: g ∥ γ.
func marshalMSK(s *ibbe.Scheme, msk *ibbe.MasterSecretKey) []byte {
	g1 := s.P.G1
	out := make([]byte, 0, g1.PointLen()+s.P.Zr.ByteLen())
	out = append(out, g1.Marshal(msk.G)...)
	out = append(out, s.P.Zr.ToBytes(msk.Gamma)...)
	return out
}

// unmarshalMSK reverses marshalMSK.
func unmarshalMSK(s *ibbe.Scheme, b []byte) (*ibbe.MasterSecretKey, error) {
	w := s.P.G1.PointLen()
	zw := s.P.Zr.ByteLen()
	if len(b) != w+zw {
		return nil, errors.New("enclave: sealed MSK has wrong length")
	}
	g, err := s.P.G1.Unmarshal(b[:w])
	if err != nil {
		return nil, fmt.Errorf("enclave: MSK generator: %w", err)
	}
	gamma, err := s.P.Zr.FromBytes(b[w:])
	if err != nil {
		return nil, fmt.Errorf("enclave: MSK exponent: %w", err)
	}
	return &ibbe.MasterSecretKey{G: g, Gamma: gamma}, nil
}

// workingSet estimates the enclave-resident bytes for a partition batch.
func workingSet(partitions [][]string) int64 {
	var n int64
	for _, p := range partitions {
		for _, id := range p {
			n += int64(len(id))
		}
		n += 256
	}
	return n
}
