// Package enclave simulates the Intel SGX primitives the IBBE-SGX system
// depends on: measured enclave launch, the ECALL trust boundary, sealed
// storage bound to the platform and enclave measurement, and an EPC
// (Enclave Page Cache) accounting model.
//
// What is faithfully modelled, per the substitution table in DESIGN.md:
//
//   - The master secret key exists in plaintext only inside an Enclave value
//     and is reachable exclusively through the ECALL methods; no API returns
//     it. The "curious administrator" of the paper's threat model interacts
//     with exactly this surface.
//   - Sealing uses AES-256-GCM under a key derived from a per-platform root
//     secret and the enclave measurement (MRENCLAVE policy), like
//     sgx_seal_data.
//   - Launch produces a measurement over the enclave code identity, and the
//     attest package can later quote it.
//   - The EPC model tracks resident enclave memory against the 128 MB limit
//     of SGXv1 and counts paging events, so experiments can observe the
//     memory pressure argument of §III-B (hybrid metadata blowing the EPC).
//
// What is not modelled: actual memory encryption and side-channel behaviour,
// which the paper also leaves out of scope.
package enclave

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/ibbesgx/ibbesgx/internal/kdf"
)

// Errors returned by the package.
var (
	// ErrSealedDataCorrupt reports a sealed blob failing authentication.
	ErrSealedDataCorrupt = errors.New("enclave: sealed data corrupt or from a different enclave/platform")
	// ErrEnclaveNotInitialized reports an ECALL before the required state exists.
	ErrEnclaveNotInitialized = errors.New("enclave: not initialized")
	// ErrEPCExhausted reports an allocation beyond the configured EPC limit.
	ErrEPCExhausted = errors.New("enclave: EPC exhausted")
)

// DefaultEPCBytes is the SGXv1 Enclave Page Cache size (128 MB), of which
// ~93 MB is usable; the simulation uses the full 128 MB as the paper does
// when reasoning about limits.
const DefaultEPCBytes = 128 << 20

// Measurement is MRENCLAVE: a SHA-256 digest of the enclave code identity.
type Measurement [32]byte

// MeasureCode computes the measurement for a code identity descriptor.
// Real SGX hashes the loaded pages; the simulation hashes the descriptor
// (name plus version), which preserves the property that attestation
// distinguishes different enclave binaries.
func MeasureCode(name, version string) Measurement {
	return sha256.Sum256([]byte("enclave-code|" + name + "|" + version))
}

// Platform simulates one SGX-capable machine: it owns the fused root secret
// that sealing keys derive from and the attestation key that quotes are
// signed with. Safe for concurrent use.
type Platform struct {
	id         string
	rootSecret [32]byte
	attestKey  *ecdsa.PrivateKey

	mu  sync.Mutex
	epc *EPCStats
}

// NewPlatform creates a platform with a random root secret and attestation
// key, as if fused at manufacturing.
func NewPlatform(id string, rng io.Reader) (*Platform, error) {
	if rng == nil {
		rng = rand.Reader
	}
	p := &Platform{id: id, epc: &EPCStats{Limit: DefaultEPCBytes}}
	if _, err := io.ReadFull(rng, p.rootSecret[:]); err != nil {
		return nil, fmt.Errorf("enclave: drawing root secret: %w", err)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("enclave: generating attestation key: %w", err)
	}
	p.attestKey = key
	return p, nil
}

// ID returns the platform identifier.
func (p *Platform) ID() string { return p.id }

// AttestationPublicKey returns the public half of the platform's quoting
// key. The attest package's simulated IAS registers it as "genuine".
func (p *Platform) AttestationPublicKey() *ecdsa.PublicKey {
	return &p.attestKey.PublicKey
}

// SignQuote signs quote contents with the platform quoting key. Only the
// attest package calls this (through Platform.Quote there).
func (p *Platform) SignQuote(digest []byte) ([]byte, error) {
	return ecdsa.SignASN1(rand.Reader, p.attestKey, digest)
}

// EPC returns a snapshot of the platform's EPC statistics.
func (p *Platform) EPC() EPCStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return *p.epc
}

// Launch creates an enclave instance on this platform with the given code
// measurement. It mirrors ECREATE/EINIT: the returned Enclave is the only
// handle to the trusted execution context.
func (p *Platform) Launch(m Measurement) *Enclave {
	return &Enclave{platform: p, measurement: m}
}

// Enclave is a launched trusted execution context. Code "inside" the
// enclave is represented by methods on wrapping types (e.g. IBBEEnclave)
// that hold their secret state in unexported fields, making the ECALL
// surface the only access path — the same containment SGX provides.
type Enclave struct {
	platform    *Platform
	measurement Measurement
}

// Measurement returns MRENCLAVE for this enclave.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Platform returns the hosting platform.
func (e *Enclave) Platform() *Platform { return e.platform }

// sealKey derives the MRENCLAVE-policy sealing key: only the same enclave
// code on the same platform can unseal.
func (e *Enclave) sealKey() [kdf.KeySize]byte {
	return kdf.DeriveKey(e.platform.rootSecret[:], e.measurement[:], []byte("sgx-seal-mrenclave-v1"))
}

// Seal protects data for persistence outside the enclave, binding the given
// label (similar to sgx_seal_data's additional authenticated data).
func (e *Enclave) Seal(data, label []byte) ([]byte, error) {
	return kdf.Seal(e.sealKey(), data, label, rand.Reader)
}

// Unseal reverses Seal; it fails if the blob was sealed by different enclave
// code or on a different platform.
func (e *Enclave) Unseal(blob, label []byte) ([]byte, error) {
	out, err := kdf.Open(e.sealKey(), blob, label)
	if err != nil {
		return nil, ErrSealedDataCorrupt
	}
	return out, nil
}

// EPCStats models Enclave Page Cache pressure. Writes inside the enclave
// call epcTouch, which tracks the resident set and counts paging events
// once the limit is exceeded — the effect §III-B fears for HE-style
// metadata expansion inside enclaves.
type EPCStats struct {
	// Limit is the EPC capacity in bytes.
	Limit int64
	// Resident is the current simulated resident enclave memory.
	Resident int64
	// PeakResident is the high-water mark.
	PeakResident int64
	// PagedBytes counts bytes (re-)loaded past the limit — each of which
	// would incur EWB/ELDU encryption costs on real hardware.
	PagedBytes int64
	// PageFaults counts paging events.
	PageFaults int64
}

// epcTouch records that the enclave holds n additional bytes while running
// an ECALL and releases them at the end (working-set model).
func (e *Enclave) epcTouch(n int64, run func()) {
	p := e.platform
	p.mu.Lock()
	p.epc.Resident += n
	if p.epc.Resident > p.epc.PeakResident {
		p.epc.PeakResident = p.epc.Resident
	}
	if p.epc.Resident > p.epc.Limit {
		p.epc.PageFaults++
		p.epc.PagedBytes += p.epc.Resident - p.epc.Limit
	}
	p.mu.Unlock()

	defer func() {
		p.mu.Lock()
		p.epc.Resident -= n
		p.mu.Unlock()
	}()
	run()
}
