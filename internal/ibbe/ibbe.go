// Package ibbe implements the Delerablée identity-based broadcast
// encryption scheme (ASIACRYPT 2007) instantiated on the Type-A symmetric
// pairing, together with the IBBE-SGX complexity cuts of Contiu et al.
// (DSN 2018, Appendix A):
//
//   - EncryptClassic is the traditional public-key-only encryption whose C2
//     computation expands a polynomial of quadratic cost (paper eq. 4).
//   - EncryptMSK uses the master secret γ directly (paper eq. 3) and is
//     linear in the receiver set — the cut enabled by keeping MSK inside an
//     SGX enclave.
//   - AddUser / RemoveUser / Rekey are the O(1) dynamic membership
//     operations of Appendix A, sections E–G, built on the C3 augmentation
//     (eq. 5).
//
// The scheme is stateless: all state lives in the key and ciphertext values
// passed in and out, which is what lets the enclave layer seal and restore
// them freely.
package ibbe

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"github.com/ibbesgx/ibbesgx/internal/curve"
	"github.com/ibbesgx/ibbesgx/internal/ff"
	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

// Errors returned by scheme operations.
var (
	// ErrGroupTooLarge reports a receiver set exceeding the m fixed at setup.
	ErrGroupTooLarge = errors.New("ibbe: receiver set exceeds maximal group size")
	// ErrNotMember reports a decryption attempt by an identity outside S.
	ErrNotMember = errors.New("ibbe: identity is not in the receiver set")
	// ErrEmptyGroup reports an empty receiver set.
	ErrEmptyGroup = errors.New("ibbe: receiver set is empty")
	// ErrBadKey reports malformed key material.
	ErrBadKey = errors.New("ibbe: malformed key material")
)

// Scheme binds the IBBE algorithms to a pairing parameter set. Metrics, when
// non-nil, receives operation counts (used by the Table I reproduction).
//
// A Scheme must not be copied after first use (it carries the identity-hash
// memo); share it by pointer, as NewScheme hands it out.
type Scheme struct {
	P       *pairing.Params
	Metrics *Metrics

	// DisableFastPath forces the reference arithmetic everywhere: plain
	// double-and-add scalar multiplication, the coefficient-by-coefficient
	// HPowers loop, square-and-multiply GT exponentiation, and uncached
	// identity hashing. The differential tests pin the fast path against
	// this mode bit-for-bit, and the crypto benchmark uses it as the
	// "old path" arm. Leave it false in production.
	DisableFastPath bool

	// Identity-hash memo (HashID is deterministic, so caching is safe).
	hashMu   sync.RWMutex
	hashMemo map[string]*big.Int

	// rMinus1 = r − 1, hoisted out of HashID.
	rm1Once sync.Once
	rm1     *big.Int
}

// NewScheme returns an IBBE scheme over the given pairing parameters.
func NewScheme(p *pairing.Params) *Scheme { return &Scheme{P: p} }

// MasterSecretKey is MSK = (g, γ). It must never leave the trusted boundary;
// the enclave package enforces that.
type MasterSecretKey struct {
	G     *curve.Point
	Gamma *big.Int
}

// PublicKey is PK = (w, v, h, h^γ, …, h^γ^m) with w = g^γ and v = e(g, h).
// HPowers[i] holds h^(γ^i), so HPowers[0] = h and len(HPowers) = m+1.
//
// A PublicKey lazily accretes precomputed fixed-base and multi-exponentiation
// tables on first use (see pkPrecomp); because of the embedded sync.Once
// guards it must be shared by pointer, never copied by value — which is how
// every layer above already handles it.
type PublicKey struct {
	W       *curve.Point
	V       *pairing.GT
	HPowers []*curve.Point

	pre pkPrecomp
}

// pkPrecomp holds the per-public-key table caches behind the fast paths.
// Each table is built at most once (computed lazily under its own sync.Once,
// so e.g. an encrypt-only workload never pays for the Straus table) and then
// reused across every operation on the key — including the per-partition
// ECALLs core.Manager issues concurrently, for which Once provides the
// memory barrier.
type pkPrecomp struct {
	wOnce sync.Once
	w     *curve.FixedBase // fixed-base table for W = g^γ (C1 = w^−k)
	hOnce sync.Once
	h     *curve.FixedBase // fixed-base table for HPowers[0] = h (C2, C3)
	vOnce sync.Once
	v     *pairing.GTFixedBase // fixed-base table for v = e(g, h) (bk = v^k)
	tOnce sync.Once
	t     *curve.MultiExpTable // odd multiples of every HPowers[i] (Straus)
}

// fbW returns the lazily-built fixed-base table for pk.W.
func (s *Scheme) fbW(pk *PublicKey) *curve.FixedBase {
	pk.pre.wOnce.Do(func() { pk.pre.w = s.P.G1.NewFixedBase(pk.W) })
	return pk.pre.w
}

// fbH returns the lazily-built fixed-base table for h = pk.HPowers[0].
func (s *Scheme) fbH(pk *PublicKey) *curve.FixedBase {
	pk.pre.hOnce.Do(func() { pk.pre.h = s.P.G1.NewFixedBase(pk.HPowers[0]) })
	return pk.pre.h
}

// fbV returns the lazily-built GT fixed-base table for pk.V.
func (s *Scheme) fbV(pk *PublicKey) *pairing.GTFixedBase {
	pk.pre.vOnce.Do(func() { pk.pre.v = s.P.NewGTFixedBase(pk.V) })
	return pk.pre.v
}

// hTable returns the lazily-built Straus multi-exponentiation table over the
// full HPowers vector.
func (s *Scheme) hTable(pk *PublicKey) *curve.MultiExpTable {
	pk.pre.tOnce.Do(func() { pk.pre.t = s.P.G1.NewMultiExpTable(pk.HPowers) })
	return pk.pre.t
}

// MaxGroupSize returns m, the largest receiver set this key supports.
func (pk *PublicKey) MaxGroupSize() int { return len(pk.HPowers) - 1 }

// UserKey is USK_u = g^(1/(γ+H(u))).
type UserKey struct {
	D *curve.Point
}

// Ciphertext is the broadcast header (C1, C2) of Delerablée's scheme plus
// the C3 = h^Π(γ+H(u)) augmentation (paper eq. 5) that makes removal and
// re-keying O(1). C3 is public: it is computable from PK alone.
type Ciphertext struct {
	C1, C2, C3 *curve.Point
}

// Clone returns a deep copy, so membership operations can be non-destructive.
func (c *Ciphertext) Clone() *Ciphertext {
	return &Ciphertext{C1: c.C1.Clone(), C2: c.C2.Clone(), C3: c.C3.Clone()}
}

// BroadcastKey is bk = v^k ∈ GT; its hash is used as a symmetric key.
type BroadcastKey = pairing.GT

// hashMemoCap bounds the identity-hash memo. Partitions top out in the low
// thousands of members (the paper's sweet spot is 1000–2000), so 4096
// entries cover every working set; when the cap is hit the memo is dropped
// wholesale, keeping memory bounded with zero bookkeeping on the hot path.
const hashMemoCap = 4096

// HashID maps an identity string into Z_r* (the function H of the paper).
// It is deterministic, never returns zero, and oversamples SHA-256 output to
// keep the modular bias negligible.
//
// Because the map is deterministic, results are memoized per Scheme (bounded
// by hashMemoCap, safe for concurrent use): every partition operation
// re-derives the same member hashes, so the repeated SHA-256 expansion and
// wide reduction collapse to one map lookup after first sight of an id.
func (s *Scheme) HashID(id string) *big.Int {
	if s.DisableFastPath {
		return s.hashIDUncached(id)
	}
	s.hashMu.RLock()
	v, ok := s.hashMemo[id]
	s.hashMu.RUnlock()
	if !ok {
		v = s.hashIDUncached(id)
		s.hashMu.Lock()
		if s.hashMemo == nil || len(s.hashMemo) >= hashMemoCap {
			s.hashMemo = make(map[string]*big.Int, 64)
		}
		s.hashMemo[id] = v
		s.hashMu.Unlock()
	}
	// Hand out a copy: big.Ints are mutable and the cached value must stay
	// pristine no matter what a caller does with the result.
	return new(big.Int).Set(v)
}

// hashIDUncached is the actual hash computation behind HashID.
func (s *Scheme) hashIDUncached(id string) *big.Int {
	r := s.P.R
	need := (r.BitLen()+7)/8 + 16
	out := make([]byte, 0, need+sha256.Size)
	var block uint32
	for len(out) < need {
		h := sha256.New()
		var pre [4]byte
		binary.BigEndian.PutUint32(pre[:], block)
		h.Write(pre[:])
		h.Write([]byte(id))
		out = h.Sum(out)
		block++
	}
	v := new(big.Int).SetBytes(out[:need])
	v.Mod(v, s.rMinus1())
	v.Add(v, bigOne) // uniform in [1, r−1]
	return v
}

// rMinus1 returns r − 1, computed once per Scheme instead of once per hash.
func (s *Scheme) rMinus1() *big.Int {
	s.rm1Once.Do(func() { s.rm1 = new(big.Int).Sub(s.P.R, bigOne) })
	return s.rm1
}

// Setup runs the system setup for maximal group size m: it draws
// MSK = (g, γ) and computes PK = (w, v, h, h^γ, …, h^γ^m). Cost is O(m)
// G1 exponentiations — the paper's Fig. 6a measures exactly this loop.
func (s *Scheme) Setup(m int, rng io.Reader) (*MasterSecretKey, *PublicKey, error) {
	if m < 1 {
		return nil, nil, errors.New("ibbe: maximal group size must be at least 1")
	}
	g1 := s.P.G1
	g, err := g1.RandPoint(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("ibbe: drawing g: %w", err)
	}
	h, err := g1.RandPoint(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("ibbe: drawing h: %w", err)
	}
	gamma, err := g1.RandScalar(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("ibbe: drawing γ: %w", err)
	}
	msk := &MasterSecretKey{G: g, Gamma: gamma}

	pk := &PublicKey{
		W: s.expG1(g, gamma),
		V: s.pair(g, h),
	}
	if s.DisableFastPath {
		pk.HPowers = make([]*curve.Point, m+1)
		acc := big.NewInt(1)
		for i := 0; i <= m; i++ {
			pk.HPowers[i] = s.expG1(h, acc)
			acc = s.P.Zr.Mul(acc, gamma)
		}
		return msk, pk, nil
	}
	// Fast path: one fixed-base table for h serves all m+1 powers (each is
	// ≈ bits(r)/4 mixed additions, no doublings), and the results share a
	// single batch normalisation instead of one inversion per point. The
	// table is kept on the public key, pre-warming the EncryptMSK hot path.
	fb := s.P.G1.NewFixedBase(h)
	exps := make([]*big.Int, m+1)
	acc := big.NewInt(1)
	for i := 0; i <= m; i++ {
		exps[i] = acc
		acc = s.P.Zr.Mul(acc, gamma)
	}
	if s.Metrics != nil {
		s.Metrics.G1Exp.Add(int64(m + 1))
	}
	pk.HPowers = fb.MulMany(exps)
	pk.pre.hOnce.Do(func() { pk.pre.h = fb })
	return msk, pk, nil
}

// Extract derives the user secret key USK = g^(1/(γ+H(u))). This is the
// O(1) key-extraction operation benchmarked in Fig. 6b.
func (s *Scheme) Extract(msk *MasterSecretKey, id string) (*UserKey, error) {
	if msk == nil || msk.G == nil || msk.Gamma == nil {
		return nil, ErrBadKey
	}
	zr := s.P.Zr
	den := zr.Add(msk.Gamma, s.HashID(id))
	inv, err := zr.Inv(den)
	if err != nil {
		// Happens only if H(u) = −γ, probability ~ 2^−160.
		return nil, fmt.Errorf("ibbe: identity collides with master secret: %w", err)
	}
	return &UserKey{D: s.expG1Secret(msk.G, inv)}, nil
}

// EncryptMSK generates a fresh broadcast key bk = v^k and header for the
// receiver identities ids, using the master secret to compute
// C2 = h^(k·Π(γ+H(u))) directly (paper eq. 3). Complexity: O(|S|) Z_r
// multiplications plus a constant number of exponentiations — the IBBE-SGX
// complexity cut.
func (s *Scheme) EncryptMSK(msk *MasterSecretKey, pk *PublicKey, ids []string, rng io.Reader) (*BroadcastKey, *Ciphertext, error) {
	if len(ids) == 0 {
		return nil, nil, ErrEmptyGroup
	}
	if len(ids) > pk.MaxGroupSize() {
		return nil, nil, fmt.Errorf("%w: %d > %d", ErrGroupTooLarge, len(ids), pk.MaxGroupSize())
	}
	zr := s.P.Zr
	k, err := s.P.G1.RandScalar(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("ibbe: drawing k: %w", err)
	}
	prod := s.prodGammaPlusHash(msk.Gamma, ids)
	if s.DisableFastPath {
		h := pk.HPowers[0]
		ct := &Ciphertext{
			C1: s.expG1(pk.W, zr.Neg(k)),
			C2: s.expG1(h, s.mulZr(k, prod)),
			C3: s.expG1(h, prod),
		}
		bk := s.expGT(pk.V, k)
		return bk, ct, nil
	}
	// Fast path: all three header points are powers of the long-lived
	// generators w and h, and bk is a power of v — every exponentiation is
	// table-driven.
	fbH := s.fbH(pk)
	ct := &Ciphertext{
		C1: s.expFixed(s.fbW(pk), zr.Neg(k)),
		C2: s.expFixed(fbH, s.mulZr(k, prod)),
		C3: s.expFixed(fbH, prod),
	}
	bk := s.expGTFixed(s.fbV(pk), k)
	return bk, ct, nil
}

// EncryptClassic is the traditional IBBE encryption that only uses PK: it
// expands Π(x + H(u)) into coefficients (quadratic cost, paper eq. 4) and
// assembles C2 from the h^γ^i powers. This is the paper's raw-IBBE baseline
// of Fig. 2.
func (s *Scheme) EncryptClassic(pk *PublicKey, ids []string, rng io.Reader) (*BroadcastKey, *Ciphertext, error) {
	if len(ids) == 0 {
		return nil, nil, ErrEmptyGroup
	}
	if len(ids) > pk.MaxGroupSize() {
		return nil, nil, fmt.Errorf("%w: %d > %d", ErrGroupTooLarge, len(ids), pk.MaxGroupSize())
	}
	k, err := s.P.G1.RandScalar(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("ibbe: drawing k: %w", err)
	}
	coeffs := s.expandProductPoly(ids) // O(n²)
	// C3 = h^Π(γ+H(u)) = Σ_i coeffs[i]·HPowers[i] in additive notation.
	c3 := s.multiExpHPowers(pk, coeffs, 0)
	if s.DisableFastPath {
		ct := &Ciphertext{
			C1: s.expG1(pk.W, s.P.Zr.Neg(k)),
			C2: s.expG1(c3, k),
			C3: c3,
		}
		bk := s.expGT(pk.V, k)
		return bk, ct, nil
	}
	ct := &Ciphertext{
		C1: s.expFixed(s.fbW(pk), s.P.Zr.Neg(k)),
		C2: s.expG1(c3, k), // fresh base: no table pays off for one use
		C3: c3,
	}
	bk := s.expGTFixed(s.fbV(pk), k)
	return bk, ct, nil
}

// Decrypt recovers bk for member id with secret key usk, given the receiver
// list ids and the header. Following Delerablée:
//
//	bk = ( e(C1, h^{p_{i,S}(γ)}) · e(USK_i, C2) )^{1/Δ},
//	p_{i,S}(x) = (Π_{j≠i}(x+H(u_j)) − Δ)/x,  Δ = Π_{j≠i} H(u_j).
//
// The polynomial expansion costs O(|S|²) — the cost the partitioning
// mechanism of the paper bounds by the partition size (Fig. 8b).
func (s *Scheme) Decrypt(pk *PublicKey, id string, usk *UserKey, ids []string, ct *Ciphertext) (*BroadcastKey, error) {
	if usk == nil || usk.D == nil {
		return nil, ErrBadKey
	}
	others := make([]string, 0, len(ids))
	found := false
	for _, u := range ids {
		if u == id && !found {
			found = true
			continue
		}
		others = append(others, u)
	}
	if !found {
		return nil, fmt.Errorf("%w: %q", ErrNotMember, id)
	}
	zr := s.P.Zr

	if len(others) == 0 {
		// Singleton group: p ≡ 0 and Δ = 1, so bk = e(USK, C2).
		return s.pairPt(usk.D, ct.C2), nil
	}

	coeffs := s.expandProductPoly(others) // degree n−1 polynomial, O(n²)
	delta := coeffs[0]
	// h^{p(γ)} = Σ_{l≥1} coeffs[l] · h^{γ^{l−1}}.
	hp := s.multiExpHPowers(pk, coeffs[1:], 0)

	num := s.P.GTMul(s.pairPt(ct.C1, hp), s.pairPt(usk.D, ct.C2))
	dInv, err := zr.Inv(delta)
	if err != nil {
		return nil, fmt.Errorf("ibbe: degenerate receiver set: %w", err)
	}
	return s.expGT(num, dInv), nil
}

// AddUser extends the receiver set of ct by id in O(1) using the master
// secret: C2 ← C2^(γ+H(u)), C3 ← C3^(γ+H(u)). The broadcast key is
// unchanged — joining members may read prior content (paper §A-E).
func (s *Scheme) AddUser(msk *MasterSecretKey, ct *Ciphertext, id string) *Ciphertext {
	e := s.P.Zr.Add(msk.Gamma, s.HashID(id))
	return &Ciphertext{
		C1: ct.C1.Clone(),
		C2: s.expG1(ct.C2, e),
		C3: s.expG1(ct.C3, e),
	}
}

// AddUsers extends the receiver set of ct by every id in ids with a constant
// number of exponentiations for the whole batch: the per-user exponents
// (γ+H(u)) are folded into one Z_r product before touching the curve, so a
// batch of n joins costs n Z_r multiplications plus the same two G1
// exponentiations a single AddUser costs. The broadcast key is unchanged,
// exactly as in the one-user operation (paper §A-E).
func (s *Scheme) AddUsers(msk *MasterSecretKey, ct *Ciphertext, ids []string) *Ciphertext {
	e := s.prodGammaPlusHash(msk.Gamma, ids)
	return &Ciphertext{
		C1: ct.C1.Clone(),
		C2: s.expG1(ct.C2, e),
		C3: s.expG1(ct.C3, e),
	}
}

// RemoveUsers revokes every id in ids from ct and re-keys, with a constant
// number of exponentiations for the whole batch (paper §A-F generalised):
// the divisors (γ+H(u)) are multiplied in Z_r, inverted once, and applied to
// C3 in a single exponentiation, after which a fresh k yields the rotated
// header and broadcast key. The caller must guarantee every id is currently
// in the receiver set; the partition layer tracks membership.
func (s *Scheme) RemoveUsers(msk *MasterSecretKey, pk *PublicKey, ct *Ciphertext, ids []string, rng io.Reader) (*BroadcastKey, *Ciphertext, error) {
	if len(ids) == 0 {
		return s.Rekey(pk, ct, rng)
	}
	zr := s.P.Zr
	den := s.prodGammaPlusHash(msk.Gamma, ids)
	inv, err := zr.Inv(den)
	if err != nil {
		return nil, nil, fmt.Errorf("ibbe: identity collides with master secret: %w", err)
	}
	c3 := s.expG1(ct.C3, inv)
	k, err := s.P.G1.RandScalar(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("ibbe: drawing k: %w", err)
	}
	bk, out := s.rotateHeader(pk, c3, k)
	return bk, out, nil
}

// rotateHeader assembles the rotated header (C1 = w^−k, C2 = C3^k) and fresh
// broadcast key bk = v^k for an established C3 — the shared tail of Rekey
// and both Remove operations. C1 and bk ride the w and v fixed-base tables;
// C2's base C3 changes every call, so it takes the generic windowed path.
func (s *Scheme) rotateHeader(pk *PublicKey, c3 *curve.Point, k *big.Int) (*BroadcastKey, *Ciphertext) {
	zr := s.P.Zr
	if s.DisableFastPath {
		out := &Ciphertext{C1: s.expG1(pk.W, zr.Neg(k)), C2: s.expG1(c3, k), C3: c3}
		return s.expGT(pk.V, k), out
	}
	out := &Ciphertext{C1: s.expFixed(s.fbW(pk), zr.Neg(k)), C2: s.expG1(c3, k), C3: c3}
	return s.expGTFixed(s.fbV(pk), k), out
}

// RemoveUser revokes id and re-keys in O(1) using the master secret
// (paper §A-F): C3 ← C3^(1/(γ+H(u))), then a fresh k gives
// C1 = w^−k, C2 = C3^k, bk = v^k.
// The caller must guarantee id is currently in the receiver set; the
// partition layer tracks membership.
func (s *Scheme) RemoveUser(msk *MasterSecretKey, pk *PublicKey, ct *Ciphertext, id string, rng io.Reader) (*BroadcastKey, *Ciphertext, error) {
	zr := s.P.Zr
	den := zr.Add(msk.Gamma, s.HashID(id))
	inv, err := zr.Inv(den)
	if err != nil {
		return nil, nil, fmt.Errorf("ibbe: identity collides with master secret: %w", err)
	}
	c3 := s.expG1(ct.C3, inv)
	k, err := s.P.G1.RandScalar(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("ibbe: drawing k: %w", err)
	}
	bk, out := s.rotateHeader(pk, c3, k)
	return bk, out, nil
}

// Rekey draws a fresh broadcast key for an unchanged receiver set in O(1)
// (paper §A-G). Only PK and the public C3 are needed.
func (s *Scheme) Rekey(pk *PublicKey, ct *Ciphertext, rng io.Reader) (*BroadcastKey, *Ciphertext, error) {
	k, err := s.P.G1.RandScalar(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("ibbe: drawing k: %w", err)
	}
	bk, out := s.rotateHeader(pk, ct.C3.Clone(), k)
	return bk, out, nil
}

// expandProductPoly returns the coefficients a_0..a_n of
// Π_{u∈ids}(x + H(u)), with a_n = 1. This is the quadratic polynomial
// expansion at the heart of both classic encryption and user decryption.
// The fast path runs the whole O(n²) recurrence in the Montgomery limb
// domain of Z_r — the hashes convert in once each, the coefficients convert
// out once at the end, and the n²/2 interior multiplications never touch
// big.Int. Metrics still count one Z_r multiplication per interior step, so
// the Table I complexity shapes are unchanged.
func (s *Scheme) expandProductPoly(ids []string) []*big.Int {
	zr := s.P.Zr
	if !s.DisableFastPath {
		if m := zr.Mont(); m != nil {
			return s.expandProductPolyMont(m, ids)
		}
	}
	coeffs := make([]*big.Int, 1, len(ids)+1)
	coeffs[0] = big.NewInt(1)
	for _, id := range ids {
		h := s.HashID(id)
		next := make([]*big.Int, len(coeffs)+1)
		next[len(coeffs)] = big.NewInt(0)
		for i := range next {
			next[i] = big.NewInt(0)
		}
		for i, c := range coeffs {
			// (Σ c_i x^i)(x + h) contributes c_i to x^{i+1} and c_i·h to x^i.
			next[i+1] = zr.Add(next[i+1], c)
			next[i] = zr.Add(next[i], s.mulZr(c, h))
		}
		coeffs = next
	}
	return coeffs
}

// expandProductPolyMont is the limb-domain expansion: the same recurrence,
// updated in place from the top coefficient downward so each round is one
// append plus n multiply-accumulates on fixed-width limb values.
func (s *Scheme) expandProductPolyMont(m *ff.Mont, ids []string) []*big.Int {
	coeffs := make([]ff.Fel, 1, len(ids)+1)
	m.SetOne(&coeffs[0])
	var h, t ff.Fel
	for _, id := range ids {
		m.FromBig(&h, s.HashID(id))
		n := len(coeffs)
		if s.Metrics != nil {
			s.Metrics.ZrMul.Add(int64(n)) // one mul per existing coefficient
		}
		var top ff.Fel
		coeffs = append(coeffs, top)
		coeffs[n] = coeffs[n-1] // leading coefficient stays 1
		for i := n - 1; i >= 1; i-- {
			m.Mul(&t, &coeffs[i], &h)
			m.Add(&coeffs[i], &t, &coeffs[i-1])
		}
		m.Mul(&coeffs[0], &coeffs[0], &h)
	}
	out := make([]*big.Int, len(coeffs))
	for i := range coeffs {
		out[i] = m.ToBig(&coeffs[i])
	}
	return out
}

// prodGammaPlusHash returns Π_{u∈ids} (γ + H(u)) mod r — the linear-cost
// exponent aggregation of EncryptMSK, AddUsers and RemoveUsers. The fast
// path accumulates in the Montgomery limb domain of Z_r; the reference arm
// multiplies big.Ints. Both count one Z_r multiplication per identity.
func (s *Scheme) prodGammaPlusHash(gamma *big.Int, ids []string) *big.Int {
	zr := s.P.Zr
	if !s.DisableFastPath {
		if m := zr.Mont(); m != nil {
			var acc, g, t ff.Fel
			m.SetOne(&acc)
			m.FromBig(&g, gamma)
			for _, id := range ids {
				m.FromBig(&t, s.HashID(id))
				m.Add(&t, &t, &g)
				m.Mul(&acc, &acc, &t)
			}
			if s.Metrics != nil {
				s.Metrics.ZrMul.Add(int64(len(ids)))
			}
			return m.ToBig(&acc)
		}
	}
	prod := big.NewInt(1)
	for _, id := range ids {
		prod = s.mulZr(prod, zr.Add(gamma, s.HashID(id)))
	}
	return prod
}

// multiExpHPowers computes Σ_i coeffs[i] · HPowers[i+offset].
//
// The fast path runs the interleaved Straus evaluation over the public key's
// precomputed odd-multiple table: one shared doubling chain for every base
// plus one mixed addition per non-zero w-NAF digit, instead of a full
// scalar multiplication per coefficient. Metrics still count one G1
// exponentiation per non-zero coefficient — the complexity the Table I
// reproduction asserts is about operation counts, not their unit price.
func (s *Scheme) multiExpHPowers(pk *PublicKey, coeffs []*big.Int, offset int) *curve.Point {
	if s.DisableFastPath {
		acc := s.P.G1.Infinity()
		for i, c := range coeffs {
			if c.Sign() == 0 {
				continue
			}
			acc = s.P.G1.Add(acc, s.expG1(pk.HPowers[i+offset], c))
		}
		return acc
	}
	if s.Metrics != nil {
		nz := int64(0)
		for _, c := range coeffs {
			if c.Sign() != 0 {
				nz++
			}
		}
		s.Metrics.G1Exp.Add(nz)
	}
	return s.hTable(pk).MultiExp(coeffs, offset)
}

var bigOne = big.NewInt(1)
