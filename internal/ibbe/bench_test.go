package ibbe

import (
	"crypto/rand"
	"fmt"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

// Microbenchmarks for the IBBE primitives, split by receiver-set size so
// the O(n) vs O(n²) paths are visible in -benchmem output.

func benchSetup(b *testing.B, m int) (*Scheme, *MasterSecretKey, *PublicKey, []string) {
	b.Helper()
	s := NewScheme(pairing.TypeA160())
	msk, pk, err := s.Setup(m, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	group := make([]string, m)
	for i := range group {
		group[i] = fmt.Sprintf("user-%04d@bench", i)
	}
	return s, msk, pk, group
}

func BenchmarkEncryptMSK(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, msk, pk, group := benchSetup(b, n)
			if _, _, err := s.EncryptMSK(msk, pk, group, rand.Reader); err != nil {
				b.Fatal(err) // warm the per-key tables outside the timer
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.EncryptMSK(msk, pk, group, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncryptMSKReference(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, msk, pk, group := benchSetup(b, n)
			s.DisableFastPath = true
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.EncryptMSK(msk, pk, group, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncryptClassic(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, _, pk, group := benchSetup(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.EncryptClassic(pk, group, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecrypt(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, msk, pk, group := benchSetup(b, n)
			_, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			uk, err := s.Extract(msk, group[0])
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Decrypt(pk, group[0], uk, group, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAddUserOp(b *testing.B) {
	s, msk, pk, group := benchSetup(b, 64)
	_, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddUser(msk, ct, fmt.Sprintf("joiner-%d@bench", i))
	}
}

func BenchmarkRemoveUserOp(b *testing.B) {
	s, msk, pk, group := benchSetup(b, 64)
	_, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.RemoveUser(msk, pk, ct, group[0], rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	s, msk, _, _ := benchSetup(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Extract(msk, fmt.Sprintf("user-%d@bench", i)); err != nil {
			b.Fatal(err)
		}
	}
}
