package ibbe

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadCiphertext reports a malformed serialised ciphertext or key.
var ErrBadCiphertext = errors.New("ibbe: bad serialised value")

// HeaderLen returns the wire size of the broadcast header (C1, C2) — the
// quantity the paper reports as the constant 256-byte group expansion for
// 512-bit parameters.
func (s *Scheme) HeaderLen() int { return 2 * s.P.G1.PointLen() }

// CiphertextLen returns the wire size of a full ciphertext including the C3
// augmentation.
func (s *Scheme) CiphertextLen() int { return 3 * s.P.G1.PointLen() }

// MarshalCiphertext encodes (C1, C2, C3) as three fixed-width points.
func (s *Scheme) MarshalCiphertext(ct *Ciphertext) []byte {
	g1 := s.P.G1
	out := make([]byte, 0, s.CiphertextLen())
	out = append(out, g1.Marshal(ct.C1)...)
	out = append(out, g1.Marshal(ct.C2)...)
	out = append(out, g1.Marshal(ct.C3)...)
	return out
}

// UnmarshalCiphertext parses the output of MarshalCiphertext.
func (s *Scheme) UnmarshalCiphertext(b []byte) (*Ciphertext, error) {
	w := s.P.G1.PointLen()
	if len(b) != 3*w {
		return nil, fmt.Errorf("%w: ciphertext is %d bytes, want %d", ErrBadCiphertext, len(b), 3*w)
	}
	c1, err := s.P.G1.Unmarshal(b[:w])
	if err != nil {
		return nil, fmt.Errorf("ibbe: C1: %w", err)
	}
	c2, err := s.P.G1.Unmarshal(b[w : 2*w])
	if err != nil {
		return nil, fmt.Errorf("ibbe: C2: %w", err)
	}
	c3, err := s.P.G1.Unmarshal(b[2*w:])
	if err != nil {
		return nil, fmt.Errorf("ibbe: C3: %w", err)
	}
	return &Ciphertext{C1: c1, C2: c2, C3: c3}, nil
}

// MarshalUserKey encodes a user secret key as one point.
func (s *Scheme) MarshalUserKey(uk *UserKey) []byte {
	return s.P.G1.Marshal(uk.D)
}

// UnmarshalUserKey parses the output of MarshalUserKey.
func (s *Scheme) UnmarshalUserKey(b []byte) (*UserKey, error) {
	d, err := s.P.G1.Unmarshal(b)
	if err != nil {
		return nil, fmt.Errorf("ibbe: user key: %w", err)
	}
	return &UserKey{D: d}, nil
}

// MarshalPublicKey encodes PK as: uint32 count ∥ W ∥ V ∥ HPowers…
func (s *Scheme) MarshalPublicKey(pk *PublicKey) []byte {
	g1 := s.P.G1
	out := make([]byte, 4, 4+g1.PointLen()*(1+len(pk.HPowers))+s.P.GTLen())
	binary.BigEndian.PutUint32(out, uint32(len(pk.HPowers)))
	out = append(out, g1.Marshal(pk.W)...)
	out = append(out, s.P.GTMarshal(pk.V)...)
	for _, hp := range pk.HPowers {
		out = append(out, g1.Marshal(hp)...)
	}
	return out
}

// UnmarshalPublicKey parses the output of MarshalPublicKey.
func (s *Scheme) UnmarshalPublicKey(b []byte) (*PublicKey, error) {
	g1 := s.P.G1
	w := g1.PointLen()
	gtLen := s.P.GTLen()
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: truncated public key", ErrBadCiphertext)
	}
	n := int(binary.BigEndian.Uint32(b))
	want := 4 + w + gtLen + n*w
	if n < 1 || len(b) != want {
		return nil, fmt.Errorf("%w: public key is %d bytes, want %d", ErrBadCiphertext, len(b), want)
	}
	off := 4
	wPt, err := g1.Unmarshal(b[off : off+w])
	if err != nil {
		return nil, fmt.Errorf("ibbe: W: %w", err)
	}
	off += w
	v, err := s.P.GTUnmarshal(b[off : off+gtLen])
	if err != nil {
		return nil, fmt.Errorf("ibbe: V: %w", err)
	}
	off += gtLen
	out := &PublicKey{W: wPt, V: v}
	for i := 0; i < n; i++ {
		p, err := g1.Unmarshal(b[off : off+w])
		if err != nil {
			return nil, fmt.Errorf("ibbe: HPowers[%d]: %w", i, err)
		}
		out.HPowers = append(out.HPowers, p)
		off += w
	}
	return out, nil
}
