package ibbe

import (
	"math/big"
	"sync/atomic"

	"github.com/ibbesgx/ibbesgx/internal/curve"
	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

// Metrics counts the expensive primitive operations performed by the scheme.
// The Table I reproduction attaches a Metrics to a Scheme and checks that the
// measured operation counts scale exactly as the paper's complexity table
// says (O(1), O(n), O(n²)), which is far more robust than timing fits.
type Metrics struct {
	// G1Exp counts elliptic-curve scalar multiplications.
	G1Exp atomic.Int64
	// GTExp counts target-group exponentiations.
	GTExp atomic.Int64
	// Pairings counts pairing evaluations.
	Pairings atomic.Int64
	// ZrMul counts scalar-field multiplications (the unit of the paper's
	// polynomial-expansion cost).
	ZrMul atomic.Int64
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.G1Exp.Store(0)
	m.GTExp.Store(0)
	m.Pairings.Store(0)
	m.ZrMul.Store(0)
}

// Snapshot returns the current counter values.
func (m *Metrics) Snapshot() (g1Exp, gtExp, pairings, zrMul int64) {
	return m.G1Exp.Load(), m.GTExp.Load(), m.Pairings.Load(), m.ZrMul.Load()
}

// SnapshotMap returns the counters keyed by name — the form exporters and
// report writers should consume: adding a counter extends the map instead
// of silently shifting Snapshot's positional 4-tuple under callers.
func (m *Metrics) SnapshotMap() map[string]int64 {
	return map[string]int64{
		"g1_exp":   m.G1Exp.Load(),
		"gt_exp":   m.GTExp.Load(),
		"pairings": m.Pairings.Load(),
		"zr_mul":   m.ZrMul.Load(),
	}
}

// Total returns a single cost figure weighting each primitive roughly by its
// relative latency (pairing ≈ 3 exponentiations ≈ 3000 scalar mults).
func (m *Metrics) Total() int64 {
	g1, gt, pr, zr := m.Snapshot()
	return 3000*pr + 1000*(g1+gt) + zr
}

// The instrumented primitive wrappers below are the only call sites for the
// underlying group operations inside the scheme.

func (s *Scheme) expG1(p *curve.Point, k *big.Int) *curve.Point {
	if s.Metrics != nil {
		s.Metrics.G1Exp.Add(1)
	}
	if s.DisableFastPath {
		return s.P.G1.ScalarMultBinary(p, new(big.Int).Mod(k, s.P.R))
	}
	return s.P.G1.ScalarMultReduced(p, k)
}

// expFixed is expG1 through a precomputed fixed-base table; it counts as the
// same one G1 exponentiation.
func (s *Scheme) expFixed(fb *curve.FixedBase, k *big.Int) *curve.Point {
	if s.Metrics != nil {
		s.Metrics.G1Exp.Add(1)
	}
	return fb.Mul(k)
}

// expG1Secret is expG1 for MSK-derived exponents (key extraction): the fast
// path takes the uniform constant-time window walk instead of the
// digit-skipping w-NAF ladder, so the secret scalar does not shape the
// operation sequence or table accesses. The reference arm keeps the binary
// ladder, preserving the DisableFastPath discipline.
func (s *Scheme) expG1Secret(p *curve.Point, k *big.Int) *curve.Point {
	if s.Metrics != nil {
		s.Metrics.G1Exp.Add(1)
	}
	if s.DisableFastPath {
		return s.P.G1.ScalarMultBinary(p, new(big.Int).Mod(k, s.P.R))
	}
	return s.P.G1.ScalarMultConstTime(p, k)
}

func (s *Scheme) expGT(a *pairing.GT, k *big.Int) *pairing.GT {
	if s.Metrics != nil {
		s.Metrics.GTExp.Add(1)
	}
	if s.DisableFastPath {
		return s.P.GTExpBinary(a, k)
	}
	return s.P.GTExp(a, k)
}

// expGTFixed is expGT through a precomputed GT table; it counts as the same
// one GT exponentiation.
func (s *Scheme) expGTFixed(t *pairing.GTFixedBase, k *big.Int) *pairing.GT {
	if s.Metrics != nil {
		s.Metrics.GTExp.Add(1)
	}
	return t.Exp(k)
}

func (s *Scheme) pair(p, q *curve.Point) *pairing.GT {
	if s.Metrics != nil {
		s.Metrics.Pairings.Add(1)
	}
	if s.DisableFastPath {
		return s.P.PairReference(p, q)
	}
	return s.P.Pair(p, q)
}

// pairPt is pair with a name that reads better at decryption call sites.
func (s *Scheme) pairPt(p, q *curve.Point) *pairing.GT { return s.pair(p, q) }

func (s *Scheme) mulZr(a, b *big.Int) *big.Int {
	if s.Metrics != nil {
		s.Metrics.ZrMul.Add(1)
	}
	return s.P.Zr.Mul(a, b)
}
