package ibbe

import (
	"crypto/rand"
	"errors"
	"fmt"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

func testScheme(t *testing.T) *Scheme {
	t.Helper()
	return NewScheme(pairing.TypeA160())
}

func setup(t *testing.T, s *Scheme, m int) (*MasterSecretKey, *PublicKey) {
	t.Helper()
	msk, pk, err := s.Setup(m, rand.Reader)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	return msk, pk
}

func ids(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("user-%04d@example.com", i)
	}
	return out
}

func TestSetupShapes(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 8)
	if pk.MaxGroupSize() != 8 {
		t.Fatalf("MaxGroupSize = %d, want 8", pk.MaxGroupSize())
	}
	if len(pk.HPowers) != 9 {
		t.Fatalf("len(HPowers) = %d, want 9", len(pk.HPowers))
	}
	// w = g^γ.
	if !s.P.G1.Equal(pk.W, s.P.G1.ScalarMultReduced(msk.G, msk.Gamma)) {
		t.Fatal("W ≠ g^γ")
	}
	// HPowers[1] = h^γ.
	if !s.P.G1.Equal(pk.HPowers[1], s.P.G1.ScalarMultReduced(pk.HPowers[0], msk.Gamma)) {
		t.Fatal("HPowers[1] ≠ h^γ")
	}
	// v = e(g, h).
	if !s.P.GTEqual(pk.V, s.P.Pair(msk.G, pk.HPowers[0])) {
		t.Fatal("V ≠ e(g, h)")
	}
}

func TestSetupRejectsBadSize(t *testing.T) {
	s := testScheme(t)
	if _, _, err := s.Setup(0, rand.Reader); err == nil {
		t.Fatal("Setup(0) accepted")
	}
}

func TestEncryptMSKDecryptRoundTrip(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 10)
	group := ids(6)
	bk, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		t.Fatalf("EncryptMSK: %v", err)
	}
	for _, u := range group {
		uk, err := s.Extract(msk, u)
		if err != nil {
			t.Fatalf("Extract(%s): %v", u, err)
		}
		got, err := s.Decrypt(pk, u, uk, group, ct)
		if err != nil {
			t.Fatalf("Decrypt(%s): %v", u, err)
		}
		if !s.P.GTEqual(got, bk) {
			t.Fatalf("member %s recovered wrong broadcast key", u)
		}
	}
}

func TestEncryptClassicDecryptRoundTrip(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 10)
	group := ids(5)
	bk, ct, err := s.EncryptClassic(pk, group, rand.Reader)
	if err != nil {
		t.Fatalf("EncryptClassic: %v", err)
	}
	for _, u := range group {
		uk, err := s.Extract(msk, u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Decrypt(pk, u, uk, group, ct)
		if err != nil {
			t.Fatalf("Decrypt(%s): %v", u, err)
		}
		if !s.P.GTEqual(got, bk) {
			t.Fatalf("member %s recovered wrong key from classic ciphertext", u)
		}
	}
}

func TestClassicAndMSKProduceInterchangeableHeaders(t *testing.T) {
	// Both paths must produce the same C3 (deterministic in S) and headers
	// decryptable by the same user keys.
	s := testScheme(t)
	msk, pk := setup(t, s, 8)
	group := ids(4)
	_, ctM, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	_, ctC, err := s.EncryptClassic(pk, group, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !s.P.G1.Equal(ctM.C3, ctC.C3) {
		t.Fatal("MSK and classic paths disagree on C3 = h^Π(γ+H(u))")
	}
}

func TestDecryptSingletonGroup(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 4)
	group := []string{"solo@example.com"}
	bk, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	uk, err := s.Extract(msk, group[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(pk, group[0], uk, group, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !s.P.GTEqual(got, bk) {
		t.Fatal("singleton decrypt failed")
	}
}

func TestNonMemberCannotDecrypt(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 8)
	group := ids(4)
	bk, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	outsider := "mallory@evil.example"
	uk, err := s.Extract(msk, outsider)
	if err != nil {
		t.Fatal(err)
	}
	// Honest API refuses: outsider not in receiver list.
	if _, err := s.Decrypt(pk, outsider, uk, group, ct); !errors.Is(err, ErrNotMember) {
		t.Fatalf("Decrypt for non-member returned %v, want ErrNotMember", err)
	}
	// Cheating attempt: outsider claims a member's slot with her own key.
	got, err := s.Decrypt(pk, group[0], uk, group, ct)
	if err == nil && s.P.GTEqual(got, bk) {
		t.Fatal("outsider recovered the broadcast key with mismatched user key")
	}
}

func TestRevokedMemberCannotDecryptNewKey(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 8)
	group := ids(4)
	_, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	revoked := group[1]
	newBk, newCt, err := s.RemoveUser(msk, pk, ct, revoked, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	remaining := []string{group[0], group[2], group[3]}

	// Remaining members still decrypt.
	for _, u := range remaining {
		uk, _ := s.Extract(msk, u)
		got, err := s.Decrypt(pk, u, uk, remaining, newCt)
		if err != nil {
			t.Fatalf("remaining member %s: %v", u, err)
		}
		if !s.P.GTEqual(got, newBk) {
			t.Fatalf("remaining member %s got wrong key", u)
		}
	}
	// The revoked member's key no longer works even claiming a valid slot.
	rk, _ := s.Extract(msk, revoked)
	got, err := s.Decrypt(pk, remaining[0], rk, remaining, newCt)
	if err == nil && s.P.GTEqual(got, newBk) {
		t.Fatal("revoked member recovered the new broadcast key")
	}
}

func TestAddUserPreservesKeyAndExtendsSet(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 8)
	group := ids(3)
	bk, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	joiner := "newcomer@example.com"
	ct2 := s.AddUser(msk, ct, joiner)
	newGroup := append(append([]string{}, group...), joiner)

	// The broadcast key did not change (joiner may read prior content).
	uk, _ := s.Extract(msk, joiner)
	got, err := s.Decrypt(pk, joiner, uk, newGroup, ct2)
	if err != nil {
		t.Fatalf("joiner decrypt: %v", err)
	}
	if !s.P.GTEqual(got, bk) {
		t.Fatal("joiner recovered a different key than the group key")
	}
	// Old members still decrypt the extended header.
	uk0, _ := s.Extract(msk, group[0])
	got0, err := s.Decrypt(pk, group[0], uk0, newGroup, ct2)
	if err != nil || !s.P.GTEqual(got0, bk) {
		t.Fatalf("existing member failed after add: %v", err)
	}
	// Original ciphertext untouched (non-destructive API).
	if s.P.G1.Equal(ct.C2, ct2.C2) {
		t.Fatal("AddUser did not change C2")
	}
}

func TestRekeyChangesKeyKeepsMembership(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 8)
	group := ids(4)
	bk, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bk2, ct2, err := s.Rekey(pk, ct, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if s.P.GTEqual(bk, bk2) {
		t.Fatal("Rekey produced the same broadcast key")
	}
	for _, u := range group {
		uk, _ := s.Extract(msk, u)
		got, err := s.Decrypt(pk, u, uk, group, ct2)
		if err != nil || !s.P.GTEqual(got, bk2) {
			t.Fatalf("member %s cannot decrypt after rekey: %v", u, err)
		}
	}
}

func TestRemoveThenAddBack(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 8)
	group := ids(3)
	_, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bk2, ct2, err := s.RemoveUser(msk, pk, ct, group[2], rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct3 := s.AddUser(msk, ct2, group[2])
	uk, _ := s.Extract(msk, group[2])
	got, err := s.Decrypt(pk, group[2], uk, group, ct3)
	if err != nil {
		t.Fatal(err)
	}
	if !s.P.GTEqual(got, bk2) {
		t.Fatal("re-added member cannot decrypt")
	}
}

func TestGroupTooLarge(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 3)
	if _, _, err := s.EncryptMSK(msk, pk, ids(4), rand.Reader); !errors.Is(err, ErrGroupTooLarge) {
		t.Fatalf("got %v, want ErrGroupTooLarge", err)
	}
	if _, _, err := s.EncryptClassic(pk, ids(4), rand.Reader); !errors.Is(err, ErrGroupTooLarge) {
		t.Fatalf("got %v, want ErrGroupTooLarge", err)
	}
}

func TestEmptyGroupRejected(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 3)
	if _, _, err := s.EncryptMSK(msk, pk, nil, rand.Reader); !errors.Is(err, ErrEmptyGroup) {
		t.Fatal("empty group accepted by EncryptMSK")
	}
	if _, _, err := s.EncryptClassic(pk, nil, rand.Reader); !errors.Is(err, ErrEmptyGroup) {
		t.Fatal("empty group accepted by EncryptClassic")
	}
}

func TestHashIDProperties(t *testing.T) {
	s := testScheme(t)
	a := s.HashID("alice")
	if a.Sign() <= 0 || a.Cmp(s.P.R) >= 0 {
		t.Fatal("HashID out of Z_r* range")
	}
	if s.HashID("alice").Cmp(a) != 0 {
		t.Fatal("HashID not deterministic")
	}
	if s.HashID("bob").Cmp(a) == 0 {
		t.Fatal("HashID collision on distinct inputs")
	}
}

func TestExpandProductPoly(t *testing.T) {
	s := testScheme(t)
	zr := s.P.Zr
	group := ids(5)
	coeffs := s.expandProductPoly(group)
	if len(coeffs) != 6 {
		t.Fatalf("degree = %d, want 5", len(coeffs)-1)
	}
	if coeffs[5].Cmp(bigOne) != 0 {
		t.Fatal("leading coefficient ≠ 1")
	}
	// Evaluate at a random x and compare to the direct product.
	x := s.HashID("evaluation-point")
	eval := coeffs[len(coeffs)-1]
	for i := len(coeffs) - 2; i >= 0; i-- {
		eval = zr.Add(zr.Mul(eval, x), coeffs[i])
	}
	direct := bigOne
	for _, u := range group {
		direct = zr.Mul(direct, zr.Add(x, s.HashID(u)))
	}
	if !zr.Equal(eval, direct) {
		t.Fatal("polynomial expansion does not match direct product")
	}
}

func TestExtractDeterministic(t *testing.T) {
	s := testScheme(t)
	msk, _ := setup(t, s, 2)
	k1, err := s.Extract(msk, "carol")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s.Extract(msk, "carol")
	if err != nil {
		t.Fatal(err)
	}
	if !s.P.G1.Equal(k1.D, k2.D) {
		t.Fatal("Extract not deterministic")
	}
}

func TestExtractRejectsNilMSK(t *testing.T) {
	s := testScheme(t)
	if _, err := s.Extract(nil, "x"); !errors.Is(err, ErrBadKey) {
		t.Fatal("nil MSK accepted")
	}
}

func TestDecryptRejectsNilUserKey(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 4)
	group := ids(2)
	_, ct, _ := s.EncryptMSK(msk, pk, group, rand.Reader)
	if _, err := s.Decrypt(pk, group[0], nil, group, ct); !errors.Is(err, ErrBadKey) {
		t.Fatal("nil user key accepted")
	}
}

func TestDecryptWithDuplicateIDsInList(t *testing.T) {
	// A duplicated identity in the receiver list must not let decryption
	// silently diverge from the encrypted set.
	s := testScheme(t)
	msk, pk := setup(t, s, 8)
	group := ids(3)
	bk, ct, _ := s.EncryptMSK(msk, pk, group, rand.Reader)
	uk, _ := s.Extract(msk, group[0])
	dup := []string{group[0], group[1], group[2], group[1]}
	got, err := s.Decrypt(pk, group[0], uk, dup, ct)
	if err == nil && s.P.GTEqual(got, bk) {
		t.Fatal("decryption succeeded with a receiver list different from the encrypted set")
	}
}

func TestCiphertextSerde(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 4)
	_, ct, _ := s.EncryptMSK(msk, pk, ids(3), rand.Reader)
	enc := s.MarshalCiphertext(ct)
	if len(enc) != s.CiphertextLen() {
		t.Fatalf("ciphertext wire size %d, want %d", len(enc), s.CiphertextLen())
	}
	back, err := s.UnmarshalCiphertext(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !s.P.G1.Equal(ct.C1, back.C1) || !s.P.G1.Equal(ct.C2, back.C2) || !s.P.G1.Equal(ct.C3, back.C3) {
		t.Fatal("ciphertext round trip changed values")
	}
	if _, err := s.UnmarshalCiphertext(enc[:10]); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
}

func TestUserKeySerde(t *testing.T) {
	s := testScheme(t)
	msk, _ := setup(t, s, 2)
	uk, _ := s.Extract(msk, "dave")
	back, err := s.UnmarshalUserKey(s.MarshalUserKey(uk))
	if err != nil {
		t.Fatal(err)
	}
	if !s.P.G1.Equal(uk.D, back.D) {
		t.Fatal("user key round trip changed value")
	}
}

func TestPublicKeySerde(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 5)
	back, err := s.UnmarshalPublicKey(s.MarshalPublicKey(pk))
	if err != nil {
		t.Fatal(err)
	}
	if back.MaxGroupSize() != pk.MaxGroupSize() {
		t.Fatal("public key size changed in round trip")
	}
	if !s.P.G1.Equal(back.W, pk.W) || !s.P.GTEqual(back.V, pk.V) {
		t.Fatal("public key round trip changed W or V")
	}
	// The deserialised key must still decrypt.
	group := ids(3)
	bk, ct, _ := s.EncryptMSK(msk, pk, group, rand.Reader)
	uk, _ := s.Extract(msk, group[0])
	got, err := s.Decrypt(back, group[0], uk, group, ct)
	if err != nil || !s.P.GTEqual(got, bk) {
		t.Fatalf("deserialised public key cannot decrypt: %v", err)
	}
	if _, err := s.UnmarshalPublicKey([]byte{0, 0}); err == nil {
		t.Fatal("truncated public key accepted")
	}
}

func TestHeaderLenMatchesPaperAt512(t *testing.T) {
	s := NewScheme(pairing.TypeA512())
	if s.HeaderLen() != 256 {
		t.Fatalf("512-bit header = %d bytes, paper reports 256", s.HeaderLen())
	}
}

func TestComplexityCountsMatchTableI(t *testing.T) {
	// Table I: EncryptMSK is O(n) Zr-mults with O(1) exponentiations;
	// classic encrypt and decrypt are O(n²); add/remove/rekey are O(1).
	s := testScheme(t)
	s.Metrics = &Metrics{}
	msk, pk := setup(t, s, 64)

	countFor := func(n int, op func(group []string)) (g1, zr int64) {
		group := ids(n)
		s.Metrics.Reset()
		op(group)
		g1e, _, _, zrm := s.Metrics.Snapshot()
		return g1e, zrm
	}

	// EncryptMSK: G1 exponentiations constant, Zr mults linear.
	g1a, zra := countFor(8, func(g []string) { _, _, _ = s.EncryptMSK(msk, pk, g, rand.Reader) })
	g1b, zrb := countFor(32, func(g []string) { _, _, _ = s.EncryptMSK(msk, pk, g, rand.Reader) })
	if g1a != g1b {
		t.Fatalf("EncryptMSK G1 exponentiations scale with n: %d vs %d", g1a, g1b)
	}
	if zrb < 3*zra {
		t.Fatalf("EncryptMSK Zr mults not linear: %d vs %d", zra, zrb)
	}

	// Classic encrypt: G1 exponentiations linear, Zr mults quadratic.
	g1a, zra = countFor(8, func(g []string) { _, _, _ = s.EncryptClassic(pk, g, rand.Reader) })
	g1b, zrb = countFor(32, func(g []string) { _, _, _ = s.EncryptClassic(pk, g, rand.Reader) })
	if g1b < 3*g1a {
		t.Fatalf("EncryptClassic G1 exponentiations not linear: %d vs %d", g1a, g1b)
	}
	if zrb < 9*zra {
		t.Fatalf("EncryptClassic Zr mults not quadratic: %d vs %d", zra, zrb)
	}

	// AddUser: constant cost regardless of group size.
	_, ct8, _ := s.EncryptMSK(msk, pk, ids(8), rand.Reader)
	_, ct32, _ := s.EncryptMSK(msk, pk, ids(32), rand.Reader)
	s.Metrics.Reset()
	s.AddUser(msk, ct8, "x@example.com")
	addSmall := s.Metrics.Total()
	s.Metrics.Reset()
	s.AddUser(msk, ct32, "x@example.com")
	addLarge := s.Metrics.Total()
	if addSmall != addLarge {
		t.Fatalf("AddUser cost varies with group size: %d vs %d", addSmall, addLarge)
	}

	// RemoveUser: constant cost regardless of group size.
	s.Metrics.Reset()
	_, _, _ = s.RemoveUser(msk, pk, ct8, ids(8)[0], rand.Reader)
	remSmall := s.Metrics.Total()
	s.Metrics.Reset()
	_, _, _ = s.RemoveUser(msk, pk, ct32, ids(32)[0], rand.Reader)
	remLarge := s.Metrics.Total()
	if remSmall != remLarge {
		t.Fatalf("RemoveUser cost varies with group size: %d vs %d", remSmall, remLarge)
	}
}
