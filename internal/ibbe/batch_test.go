package ibbe

import (
	"crypto/rand"
	"testing"
)

// TestAddUsersMatchesSequential checks the batch join is the identical group
// element the one-at-a-time path produces: both raise C2 and C3 to
// Π(γ+H(u)), so the ciphertexts must be point-for-point equal.
func TestAddUsersMatchesSequential(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 8)
	group := ids(3)
	_, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	joiners := []string{"j1@x", "j2@x", "j3@x"}

	seq := ct.Clone()
	for _, u := range joiners {
		seq = s.AddUser(msk, seq, u)
	}
	batch := s.AddUsers(msk, ct, joiners)

	g1 := s.P.G1
	if !g1.Equal(seq.C1, batch.C1) || !g1.Equal(seq.C2, batch.C2) || !g1.Equal(seq.C3, batch.C3) {
		t.Fatal("batched AddUsers diverges from sequential AddUser")
	}
	// And the extended set actually decrypts.
	all := append(append([]string(nil), group...), joiners...)
	uk, err := s.Extract(msk, joiners[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decrypt(pk, joiners[1], uk, all, batch); err != nil {
		t.Fatalf("joiner cannot decrypt after batch add: %v", err)
	}
}

// TestRemoveUsersMatchesSequential checks the batched removal lands on the
// same C3 (the receiver-set fingerprint) as removing one user at a time, and
// that the fresh broadcast key decrypts for the survivors only.
func TestRemoveUsersMatchesSequential(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 8)
	group := ids(6)
	_, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	leavers := []string{group[1], group[4]}

	seq := ct.Clone()
	for _, u := range leavers {
		if _, seq, err = s.RemoveUser(msk, pk, seq, u, rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	bk, batch, err := s.RemoveUsers(msk, pk, ct, leavers, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// C1/C2 embed fresh randomness, but C3 = h^Π_{remaining}(γ+H(u)) is
	// deterministic and must agree.
	if !s.P.G1.Equal(seq.C3, batch.C3) {
		t.Fatal("batched RemoveUsers lands on a different receiver-set element")
	}

	remaining := []string{group[0], group[2], group[3], group[5]}
	uk, err := s.Extract(msk, group[2])
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decrypt(pk, group[2], uk, remaining, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !s.P.GTEqual(got, bk) {
		t.Fatal("survivor derives a different broadcast key")
	}
	// A removed user must not decrypt even claiming the old set.
	ukGone, err := s.Extract(msk, leavers[0])
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Decrypt(pk, leavers[0], ukGone, group, batch); err == nil && s.P.GTEqual(got, bk) {
		t.Fatal("removed user still derives the broadcast key")
	}
}

// TestRemoveUsersEmptyBatchIsRekey checks the degenerate batch falls back to
// a plain O(1) re-key of the unchanged receiver set.
func TestRemoveUsersEmptyBatchIsRekey(t *testing.T) {
	s := testScheme(t)
	msk, pk := setup(t, s, 4)
	group := ids(3)
	bk0, ct, err := s.EncryptMSK(msk, pk, group, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bk, out, err := s.RemoveUsers(msk, pk, ct, nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if s.P.GTEqual(bk, bk0) {
		t.Fatal("empty removal batch kept the broadcast key")
	}
	if !s.P.G1.Equal(ct.C3, out.C3) {
		t.Fatal("empty removal batch changed the receiver set")
	}
}
