package ibbe

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

// detRand is a deterministic byte stream (SHA-256 in counter mode). Feeding
// two scheme instances the same seed makes them draw identical scalars and
// points, which is what lets the differential tests demand bit-identical
// outputs rather than just "both decrypt".
type detRand struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

func newDetRand(seed string) *detRand {
	return &detRand{seed: sha256.Sum256([]byte(seed))}
}

func (d *detRand) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		var block [40]byte
		copy(block[:32], d.seed[:])
		binary.BigEndian.PutUint64(block[32:], d.ctr)
		d.ctr++
		sum := sha256.Sum256(block[:])
		d.buf = append(d.buf, sum[:]...)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

// fastPathParamSets returns the parameter sets the differential suite runs
// on; the larger two only outside -short to keep local iteration quick.
func fastPathParamSets(t *testing.T) []*pairing.Params {
	t.Helper()
	sets := []*pairing.Params{pairing.TypeA160()}
	if !testing.Short() {
		sets = append(sets, pairing.TypeA256(), pairing.TypeA512())
	}
	return sets
}

// TestFastPathMatchesReference pins every operation of the table-driven fast
// path against the reference arithmetic, bit for bit: same deterministic
// randomness in, byte-identical keys, headers and broadcast keys out.
func TestFastPathMatchesReference(t *testing.T) {
	for _, params := range fastPathParamSets(t) {
		t.Run(params.Name(), func(t *testing.T) {
			const m = 12
			slow := NewScheme(params)
			slow.DisableFastPath = true
			fast := NewScheme(params)
			group := ids(m)

			// Setup: identical rng stream must yield identical key material.
			mskS, pkS, err := slow.Setup(m, newDetRand("setup"))
			if err != nil {
				t.Fatalf("slow Setup: %v", err)
			}
			mskF, pkF, err := fast.Setup(m, newDetRand("setup"))
			if err != nil {
				t.Fatalf("fast Setup: %v", err)
			}
			if !bytes.Equal(slow.MarshalPublicKey(pkS), fast.MarshalPublicKey(pkF)) {
				t.Fatal("Setup public keys differ between fast and reference paths")
			}
			if !params.G1.Equal(mskS.G, mskF.G) || mskS.Gamma.Cmp(mskF.Gamma) != 0 {
				t.Fatal("Setup master secrets differ between fast and reference paths")
			}

			// From here on both paths share one key set; only the arithmetic
			// route differs.
			msk, pk := mskF, pkF

			ukS, err := slow.Extract(msk, group[0])
			if err != nil {
				t.Fatalf("slow Extract: %v", err)
			}
			ukF, err := fast.Extract(msk, group[0])
			if err != nil {
				t.Fatalf("fast Extract: %v", err)
			}
			if !bytes.Equal(slow.MarshalUserKey(ukS), fast.MarshalUserKey(ukF)) {
				t.Fatal("Extract differs between fast and reference paths")
			}

			type op struct {
				name string
				run  func(s *Scheme) ([]byte, []byte, error)
			}
			_, baseCt, err := fast.EncryptMSK(msk, pk, group, newDetRand("base"))
			if err != nil {
				t.Fatalf("base EncryptMSK: %v", err)
			}
			ops := []op{
				{"EncryptMSK", func(s *Scheme) ([]byte, []byte, error) {
					bk, ct, err := s.EncryptMSK(msk, pk, group, newDetRand("enc"))
					if err != nil {
						return nil, nil, err
					}
					return params.GTMarshal(bk), s.MarshalCiphertext(ct), nil
				}},
				{"EncryptClassic", func(s *Scheme) ([]byte, []byte, error) {
					bk, ct, err := s.EncryptClassic(pk, group, newDetRand("classic"))
					if err != nil {
						return nil, nil, err
					}
					return params.GTMarshal(bk), s.MarshalCiphertext(ct), nil
				}},
				{"Decrypt", func(s *Scheme) ([]byte, []byte, error) {
					bk, err := s.Decrypt(pk, group[0], ukF, group, baseCt)
					if err != nil {
						return nil, nil, err
					}
					return params.GTMarshal(bk), nil, nil
				}},
				{"AddUsers", func(s *Scheme) ([]byte, []byte, error) {
					ct := s.AddUsers(msk, baseCt, []string{"new-a@x", "new-b@x"})
					return nil, s.MarshalCiphertext(ct), nil
				}},
				{"RemoveUsers", func(s *Scheme) ([]byte, []byte, error) {
					bk, ct, err := s.RemoveUsers(msk, pk, baseCt, group[:2], newDetRand("rm"))
					if err != nil {
						return nil, nil, err
					}
					return params.GTMarshal(bk), s.MarshalCiphertext(ct), nil
				}},
				{"Rekey", func(s *Scheme) ([]byte, []byte, error) {
					bk, ct, err := s.Rekey(pk, baseCt, newDetRand("rekey"))
					if err != nil {
						return nil, nil, err
					}
					return params.GTMarshal(bk), s.MarshalCiphertext(ct), nil
				}},
			}
			for _, o := range ops {
				bkS, ctS, err := o.run(slow)
				if err != nil {
					t.Fatalf("slow %s: %v", o.name, err)
				}
				bkF, ctF, err := o.run(fast)
				if err != nil {
					t.Fatalf("fast %s: %v", o.name, err)
				}
				if !bytes.Equal(bkS, bkF) {
					t.Fatalf("%s: broadcast keys differ between fast and reference paths", o.name)
				}
				if !bytes.Equal(ctS, ctF) {
					t.Fatalf("%s: ciphertexts differ between fast and reference paths", o.name)
				}
			}
		})
	}
}

// TestFastPathDecryptsReferenceCiphertext crosses the paths: reference
// encrypt / fast decrypt and vice versa, on a shared key set.
func TestFastPathDecryptsReferenceCiphertext(t *testing.T) {
	slow := NewScheme(pairing.TypeA160())
	slow.DisableFastPath = true
	fast := NewScheme(pairing.TypeA160())
	msk, pk := setup(t, fast, 8)
	group := ids(8)
	uk, err := fast.Extract(msk, group[3])
	if err != nil {
		t.Fatal(err)
	}
	bk, ct, err := slow.EncryptMSK(msk, pk, group, newDetRand("cross-1"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := fast.Decrypt(pk, group[3], uk, group, ct)
	if err != nil || !fast.P.GTEqual(got, bk) {
		t.Fatalf("fast Decrypt of reference ciphertext: %v", err)
	}
	bk, ct, err = fast.EncryptMSK(msk, pk, group, newDetRand("cross-2"))
	if err != nil {
		t.Fatal(err)
	}
	got, err = slow.Decrypt(pk, group[3], uk, group, ct)
	if err != nil || !slow.P.GTEqual(got, bk) {
		t.Fatalf("reference Decrypt of fast ciphertext: %v", err)
	}
}

func TestHashIDMemoMatchesUncachedAndCopies(t *testing.T) {
	s := testScheme(t)
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("memo-%03d@example.com", i)
		first := s.HashID(id)  // fills the memo
		second := s.HashID(id) // memo hit
		if first.Cmp(second) != 0 {
			t.Fatalf("memoized hash differs for %s", id)
		}
		if first.Cmp(s.hashIDUncached(id)) != 0 {
			t.Fatalf("memoized hash differs from uncached for %s", id)
		}
		// Mutating a returned value must not poison the cache.
		second.SetInt64(1)
		if s.HashID(id).Cmp(first) != 0 {
			t.Fatalf("cache poisoned through returned value for %s", id)
		}
	}
}

func TestHashIDMemoBounded(t *testing.T) {
	s := testScheme(t)
	for i := 0; i < hashMemoCap+64; i++ {
		s.HashID(fmt.Sprintf("bound-%05d@example.com", i))
	}
	s.hashMu.RLock()
	n := len(s.hashMemo)
	s.hashMu.RUnlock()
	if n > hashMemoCap {
		t.Fatalf("hash memo grew to %d entries, cap is %d", n, hashMemoCap)
	}
}

// TestHashIDConcurrent hammers the memo from many goroutines over an id set
// that deliberately wraps the cap mid-run (forcing resets under load) and
// checks every result; run under -race this proves the memo is race-clean.
func TestHashIDConcurrent(t *testing.T) {
	s := testScheme(t)
	slow := NewScheme(s.P)
	slow.DisableFastPath = true
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				id := fmt.Sprintf("conc-%03d@example.com", (i+w)%97)
				if s.HashID(id).Cmp(slow.HashID(id)) != 0 {
					errs <- fmt.Errorf("worker %d: hash mismatch for %s", w, id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPrecomputeConcurrent exercises the lazy per-key tables from many
// goroutines at once: every operation must agree with the reference path no
// matter which goroutine wins the sync.Once races.
func TestPrecomputeConcurrent(t *testing.T) {
	fast := NewScheme(pairing.TypeA160())
	slow := NewScheme(pairing.TypeA160())
	slow.DisableFastPath = true
	msk, pk := setup(t, fast, 8)
	group := ids(8)
	uk, err := fast.Extract(msk, group[0])
	if err != nil {
		t.Fatal(err)
	}
	bk, ct, err := slow.EncryptMSK(msk, pk, group, newDetRand("pre"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seed := fmt.Sprintf("pre-%d", w)
			if _, _, err := fast.EncryptMSK(msk, pk, group, newDetRand(seed)); err != nil {
				errs <- err
				return
			}
			got, err := fast.Decrypt(pk, group[0], uk, group, ct)
			if err != nil {
				errs <- err
				return
			}
			if !fast.P.GTEqual(got, bk) {
				errs <- fmt.Errorf("worker %d: wrong broadcast key", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
