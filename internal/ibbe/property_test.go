package ibbe

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"testing"
	"testing/quick"

	"github.com/ibbesgx/ibbesgx/internal/pairing"
)

// The property tests share one system setup (Setup is the expensive part)
// and quick-check scheme invariants over randomized receiver sets and
// membership histories.

type propEnv struct {
	s   *Scheme
	msk *MasterSecretKey
	pk  *PublicKey
}

func newPropEnv(t *testing.T, m int) *propEnv {
	t.Helper()
	s := NewScheme(pairing.TypeA160())
	msk, pk, err := s.Setup(m, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &propEnv{s: s, msk: msk, pk: pk}
}

// idsFromSeed deterministically derives a duplicate-free identity set of
// size n (1 ≤ n ≤ maxN) from a seed.
func idsFromSeed(seed int64, maxN int) []string {
	rng := mrand.New(mrand.NewSource(seed))
	n := 1 + rng.Intn(maxN)
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("prop-%d-%03d@example.com", seed, i)
	}
	return out
}

// Property: for any receiver set, every member decrypts the broadcast key
// produced by the MSK path.
func TestPropertyAllMembersDecrypt(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised property sweep: skipped in -short CI runs")
	}
	env := newPropEnv(t, 12)
	prop := func(seed int64) bool {
		group := idsFromSeed(seed, 12)
		bk, ct, err := env.s.EncryptMSK(env.msk, env.pk, group, rand.Reader)
		if err != nil {
			return false
		}
		// Check a pseudo-random member rather than all (keeps it fast).
		member := group[mrand.New(mrand.NewSource(seed)).Intn(len(group))]
		uk, err := env.s.Extract(env.msk, member)
		if err != nil {
			return false
		}
		got, err := env.s.Decrypt(env.pk, member, uk, group, ct)
		return err == nil && env.s.P.GTEqual(got, bk)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the two encryption paths agree on C3 for any receiver set
// (C3 is deterministic in S; it's the anchor of the O(1) dynamic ops).
func TestPropertyC3PathsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised property sweep: skipped in -short CI runs")
	}
	env := newPropEnv(t, 10)
	prop := func(seed int64) bool {
		group := idsFromSeed(seed, 10)
		_, ctM, err := env.s.EncryptMSK(env.msk, env.pk, group, rand.Reader)
		if err != nil {
			return false
		}
		_, ctC, err := env.s.EncryptClassic(env.pk, group, rand.Reader)
		if err != nil {
			return false
		}
		return env.s.P.G1.Equal(ctM.C3, ctC.C3)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: an arbitrary add/remove history preserves decryptability for a
// surviving member and denies the last-removed member.
func TestPropertyMembershipHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised property sweep: skipped in -short CI runs")
	}
	env := newPropEnv(t, 16)
	historyProperty(t, env)
}

// historyProperty replays 25 seeded random membership histories (mixed
// adds and removes) and checks after each: a surviving member decrypts the
// current key, and the most recently revoked member's key does not.
func historyProperty(t *testing.T, env *propEnv) {
	t.Helper()
	for seed := int64(1); seed <= 25; seed++ {
		rng := mrand.New(mrand.NewSource(seed))
		group := idsFromSeed(seed, 6)
		bk, ct, err := env.s.EncryptMSK(env.msk, env.pk, group, rand.Reader)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		live := append([]string(nil), group...)
		var lastRemoved string
		for step := 0; step < 6; step++ {
			if len(live) > 1 && rng.Intn(2) == 0 {
				idx := rng.Intn(len(live))
				lastRemoved = live[idx]
				live = append(live[:idx], live[idx+1:]...)
				bk, ct, err = env.s.RemoveUser(env.msk, env.pk, ct, lastRemoved, rand.Reader)
				if err != nil {
					t.Fatalf("seed %d remove: %v", seed, err)
				}
			} else if len(live) < 14 {
				u := fmt.Sprintf("hist-%d-%d@example.com", seed, step)
				live = append(live, u)
				ct = env.s.AddUser(env.msk, ct, u)
			}
		}
		member := live[rng.Intn(len(live))]
		uk, err := env.s.Extract(env.msk, member)
		if err != nil {
			t.Fatal(err)
		}
		got, err := env.s.Decrypt(env.pk, member, uk, live, ct)
		if err != nil {
			t.Fatalf("seed %d: surviving member cannot decrypt: %v", seed, err)
		}
		if !env.s.P.GTEqual(got, bk) {
			t.Fatalf("seed %d: surviving member got wrong key", seed)
		}
		if lastRemoved != "" {
			rk, err := env.s.Extract(env.msk, lastRemoved)
			if err != nil {
				t.Fatal(err)
			}
			if got, err := env.s.Decrypt(env.pk, member, rk, live, ct); err == nil && env.s.P.GTEqual(got, bk) {
				t.Fatalf("seed %d: revoked member still decrypts", seed)
			}
		}
	}
}

// Property: ciphertext serialisation round-trips for arbitrary reachable
// ciphertexts.
func TestPropertyCiphertextSerde(t *testing.T) {
	env := newPropEnv(t, 8)
	prop := func(seed int64) bool {
		group := idsFromSeed(seed, 8)
		_, ct, err := env.s.EncryptMSK(env.msk, env.pk, group, rand.Reader)
		if err != nil {
			return false
		}
		back, err := env.s.UnmarshalCiphertext(env.s.MarshalCiphertext(ct))
		if err != nil {
			return false
		}
		return env.s.P.G1.Equal(ct.C1, back.C1) &&
			env.s.P.G1.Equal(ct.C2, back.C2) &&
			env.s.P.G1.Equal(ct.C3, back.C3)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: HashID is injective-in-practice and stable across calls for
// arbitrary strings (including empty and unicode).
func TestPropertyHashIDStable(t *testing.T) {
	env := newPropEnv(t, 2)
	prop := func(a, b string) bool {
		ha := env.s.HashID(a)
		if ha.Cmp(env.s.HashID(a)) != 0 {
			return false
		}
		if a != b && ha.Cmp(env.s.HashID(b)) == 0 {
			return false // collision on random short strings ⇒ broken
		}
		return ha.Sign() > 0 && ha.Cmp(env.s.P.R) < 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
