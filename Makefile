# IBBE-SGX reproduction — the targets CI runs are the targets humans run.

GO ?= go

.PHONY: all build vet fmt test short race bench fuzz benchdiff ci

all: build

## build: compile every package and command
build:
	$(GO) build ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## fmt: fail if any file needs gofmt
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## test: the full suite, including integration and property sweeps
test:
	$(GO) test ./...

## short: the fast suite CI's test job runs (slow sweeps are Short-guarded)
short:
	$(GO) test -short ./...

## race: race detector over the concurrent layers (core manager, admin, cluster, storage) and the crypto substrate
race:
	$(GO) test -race ./internal/core/... ./internal/admin/... ./internal/enclave/... ./internal/cluster/... ./internal/dkg/... ./internal/storage/... ./internal/partition/... ./internal/ff/... ./internal/curve/... ./internal/pairing/... ./internal/ibbe/...

## bench: one pass over every benchmark (smoke; use cmd/ibbe-bench for figures)
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

## fuzz: differential fuzz of the Montgomery limb core vs big.Int (15s, as in CI)
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzMontFieldVsBigInt$$' -fuzztime=15s ./internal/ff

## benchdiff: measure the gated scenarios fresh and compare against the committed baselines
benchdiff:
	$(GO) run ./cmd/ibbe-bench -json BENCH_crypto.fresh.json crypto
	$(GO) run ./cmd/benchdiff -old BENCH_crypto.json -new BENCH_crypto.fresh.json -max-regress 0.15
	$(GO) run ./cmd/ibbe-bench -json BENCH_readpath.fresh.json readpath
	$(GO) run ./cmd/benchdiff -old BENCH_readpath.json -new BENCH_readpath.fresh.json -max-regress 0.15
	$(GO) run ./cmd/ibbe-bench -json BENCH_millionuser.fresh.json millionuser
	$(GO) run ./cmd/benchdiff -old BENCH_millionuser.json -new BENCH_millionuser.fresh.json

## ci: everything the workflow gates on
ci: build vet fmt test race
