module github.com/ibbesgx/ibbesgx

go 1.24
