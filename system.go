package ibbesgx

import (
	"crypto/ecdh"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"fmt"

	"github.com/ibbesgx/ibbesgx/internal/admin"
	"github.com/ibbesgx/ibbesgx/internal/attest"
	"github.com/ibbesgx/ibbesgx/internal/client"
	"github.com/ibbesgx/ibbesgx/internal/core"
	"github.com/ibbesgx/ibbesgx/internal/enclave"
	"github.com/ibbesgx/ibbesgx/internal/ibbe"
	"github.com/ibbesgx/ibbesgx/internal/pairing"
	"github.com/ibbesgx/ibbesgx/internal/pki"
)

// Options configures NewSystem.
type Options struct {
	// Params selects the pairing parameter scale:
	// "fast-160" (default; quick, no security margin — development and CI),
	// "medium-256", or "paper-512" (the artifact-faithful scale whose group
	// elements serialise to the paper's 128 bytes).
	Params string
	// PartitionCapacity is the fixed partition size |p| (§IV-C). The paper
	// uses 1000–4000 at million-user scale; default 1000.
	PartitionCapacity int
	// PlatformID names the simulated SGX platform.
	PlatformID string
	// Seed drives partition-picking randomness (not cryptographic
	// randomness); fixed seeds give reproducible partition layouts.
	Seed int64
}

// System is a fully-wired IBBE-SGX deployment: the simulated SGX platform,
// the enclave holding the master secret, the attestation ecosystem (IAS +
// auditor/CA) and the certified enclave identity. It is the trust anchor
// from which admins are spawned and user credentials provisioned.
type System struct {
	platform *enclave.Platform
	encl     *enclave.IBBEEnclave
	ias      *attest.IAS
	auditor  *pki.Auditor
	cert     *x509.Certificate
	manager  *core.Manager
	log      *core.OpLog
	capacity int
}

// NewSystem performs the paper's full bootstrap: create the platform,
// launch the enclave, run system setup inside it (Fig. 6a), attest the
// enclave through the simulated IAS, and have the auditor/CA certify the
// enclave identity key (Fig. 3).
func NewSystem(opts Options) (*System, error) {
	params := pairing.TypeA160()
	switch opts.Params {
	case "", "fast-160":
		// default
	case "medium-256":
		params = pairing.TypeA256()
	case "paper-512":
		params = pairing.TypeA512()
	default:
		return nil, fmt.Errorf("ibbesgx: unknown parameter scale %q", opts.Params)
	}
	capacity := opts.PartitionCapacity
	if capacity == 0 {
		capacity = 1000
	}
	platformID := opts.PlatformID
	if platformID == "" {
		platformID = "sgx-platform-0"
	}

	platform, err := enclave.NewPlatform(platformID, rand.Reader)
	if err != nil {
		return nil, err
	}
	ias, err := attest.NewIAS()
	if err != nil {
		return nil, err
	}
	ias.RegisterPlatform(platform)

	encl, err := enclave.NewIBBEEnclave(platform, params)
	if err != nil {
		return nil, err
	}
	if _, _, err := encl.EcallSetup(capacity); err != nil {
		return nil, err
	}

	auditor, err := pki.NewAuditor(ias.PublicKey(), enclave.IBBEMeasurement())
	if err != nil {
		return nil, err
	}
	cert, err := auditor.AttestAndCertify(ias, encl)
	if err != nil {
		return nil, fmt.Errorf("ibbesgx: enclave attestation failed: %w", err)
	}

	mgr, err := core.NewManager(encl, capacity, opts.Seed)
	if err != nil {
		return nil, err
	}
	log, err := core.NewOpLog()
	if err != nil {
		return nil, err
	}
	return &System{
		platform: platform,
		encl:     encl,
		ias:      ias,
		auditor:  auditor,
		cert:     cert,
		manager:  mgr,
		log:      log,
		capacity: capacity,
	}, nil
}

// NewAdmin returns an administrator frontend publishing to the given store.
// All admins share the system's manager state and certified operation log.
func (s *System) NewAdmin(name string, store Store) (*Admin, error) {
	if store == nil {
		return nil, errors.New("ibbesgx: nil store")
	}
	return admin.New(name, s.manager, store, s.log), nil
}

// UserCredentials is the outcome of provisioning: the user's identity and
// IBBE secret key, accepted only after the enclave certificate chain
// verified (Fig. 3 step 4).
type UserCredentials struct {
	ID  string
	key *ibbe.UserKey
	sys *System
}

// ProvisionUser runs the user-side trust establishment end to end: verify
// the enclave certificate against the auditor root and the expected
// measurement, generate an ephemeral ECDH key, request the user's IBBE
// secret key from the enclave, verify the enclave's signature, and unwrap.
func (s *System) ProvisionUser(id string) (*UserCredentials, error) {
	enclaveKey, err := pki.VerifyEnclaveCert(s.cert, s.auditor.RootCertificate(), enclave.IBBEMeasurement())
	if err != nil {
		return nil, fmt.Errorf("ibbesgx: enclave certificate rejected: %w", err)
	}
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	prov, err := s.encl.EcallExtractUserKey(id, priv.PublicKey())
	if err != nil {
		return nil, err
	}
	key, err := prov.Open(s.encl.Scheme(), enclaveKey, priv)
	if err != nil {
		return nil, fmt.Errorf("ibbesgx: provisioned key rejected: %w", err)
	}
	return &UserCredentials{ID: id, key: key, sys: s}, nil
}

// NewClient builds a client for a group from provisioned credentials.
func (s *System) NewClient(creds *UserCredentials, store Store, group string) (*Client, error) {
	if creds == nil || creds.sys != s {
		return nil, errors.New("ibbesgx: credentials were not provisioned by this system")
	}
	return client.New(s.encl.Scheme(), s.manager.PublicKey(), creds.ID, creds.key, store, group)
}

// Log returns the certified membership-operation log.
func (s *System) Log() *OpLog { return s.log }

// PartitionCapacity returns the fixed partition size.
func (s *System) PartitionCapacity() int { return s.capacity }

// EnclaveCertificate returns the auditor-issued enclave identity
// certificate (what users pin alongside the auditor root).
func (s *System) EnclaveCertificate() *x509.Certificate { return s.cert }

// AuditorRoot returns the auditor/CA root certificate.
func (s *System) AuditorRoot() *x509.Certificate { return s.auditor.RootCertificate() }

// EPCStats reports the simulated Enclave Page Cache statistics.
func (s *System) EPCStats() enclave.EPCStats { return s.platform.EPC() }
